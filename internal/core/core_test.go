package core

import (
	"strconv"
	"strings"
	"testing"
)

// fastOptions keeps integration tests quick while exercising every path.
func fastOptions() Options {
	return Options{
		Seed:              2015,
		TraceSamples:      800,
		Replicates:        2500,
		MeasurementTrials: 30,
	}
}

func TestIDsStableAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("experiment count = %d", len(ids))
	}
	want := map[ID]bool{
		Table1: true, Table2: true, Table3: true, Table4: true, Table5: true,
		Figure1: true, Figure2: true, Figure3: true, Figure4: true,
		Gaming: true, Rules: true, Ablation: true, VarianceDecomp: true,
		Meters: true,
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected id %q", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("tableX", fastOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func renderOf(t *testing.T, id ID) string {
	t.Helper()
	res, err := Run(id, fastOptions())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID() != id || res.Title() == "" {
		t.Fatalf("%s: bad metadata %q %q", id, res.ID(), res.Title())
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if len(res.Tables()) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	return b.String()
}

func TestTable1Content(t *testing.T) {
	out := renderOf(t, Table1)
	for _, want := range []string{"Granularity", "1/64", "1/8", "full core phase", "16 nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ReproducesPublishedNumbers(t *testing.T) {
	out := renderOf(t, Table2)
	// The published kilowatt values must appear verbatim in the
	// reproduction columns (calibration is sub-0.5%, so rounding to one
	// decimal matches the paper's own rounding).
	for _, want := range []string{"398.7", "11503.3", "833.4", "873.8", "698.4", "59.1", "63.9", "46.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing published value %q:\n%s", want, out)
		}
	}
}

func TestTable3Content(t *testing.T) {
	out := renderOf(t, Table3)
	for _, want := range []string{"FIRESTARTER", "MPrime", "Rodinia", "2x Intel X5560", "GPUs in 1000 nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestTable4ReproducesPublishedMoments(t *testing.T) {
	out := renderOf(t, Table4)
	for _, want := range []string{"581.93", "971.74", "366.84", "209.88", "90.74", "386.86", "11.66", "1.81"} {
		if strings.Count(out, want) < 2 { // reproduced column and paper column
			t.Errorf("Table 4 value %q not reproduced exactly:\n%s", want, out)
		}
	}
}

func TestTable5ReproducesGridExactly(t *testing.T) {
	res, err := Run(Table5, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	grid := res.Tables()[0]
	want := [][]string{
		{"0.5%", "62", "137", "370"},
		{"1.0%", "16", "35", "96"},
		{"1.5%", "7", "16", "43"},
		{"2.0%", "4", "9", "24"},
	}
	if len(grid.Rows) != 4 {
		t.Fatalf("grid rows = %d", len(grid.Rows))
	}
	for i, w := range want {
		for j := range w {
			if grid.Rows[i][j] != w[j] {
				t.Errorf("Table5[%d][%d] = %q, want %q", i, j, grid.Rows[i][j], w[j])
			}
		}
	}
	// Intro examples: 4 nodes → 3.2%, 292 nodes → 0.2%.
	out := renderOf(t, Table5)
	for _, want := range []string{"±3.2%", "±0.2%", "11"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 extras missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1RendersAllSystems(t *testing.T) {
	out := renderOf(t, Figure1)
	for _, want := range []string{"Colosse", "Sequoia-25", "Piz Daint", "L-CSC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
	if !strings.Contains(out, "fraction of core phase") {
		t.Error("Figure 1 chart missing")
	}
}

func TestFigure2RendersHistograms(t *testing.T) {
	out := renderOf(t, Figure2)
	if strings.Count(out, "Figure 2 (") != 6 {
		t.Errorf("expected 6 histograms:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Error("no histogram bars rendered")
	}
	// All six are near-normal, the paper's premise for Section 4.
	if strings.Contains(out, "false") {
		t.Errorf("some dataset flagged non-normal:\n%s", out)
	}
}

func TestFigure3CoverageCalibrated(t *testing.T) {
	res, err := Run(Figure3, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables()[0]
	if len(table.Rows) != len(figure3SampleSizes) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	targets := []float64{0.80, 0.95, 0.99}
	for _, row := range table.Rows {
		for j, target := range targets {
			cov, err := strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				t.Fatalf("unparsable coverage %q", row[j+1])
			}
			// Monte-Carlo tolerance at 2500 replicates plus margin.
			if diff := cov - target; diff < -0.035 || diff > 0.035 {
				t.Errorf("n=%s level=%v coverage=%v miscalibrated", row[0], target, cov)
			}
		}
	}
}

func TestFigure4Findings(t *testing.T) {
	out := renderOf(t, Figure4)
	for _, want := range []string{"774 MHz", "900 MHz", "fan-corrected", "VID"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
}

func TestGamingStudy(t *testing.T) {
	res, err := Run(Gaming, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables()[0]
	if len(table.Rows) != 5 {
		t.Fatalf("gaming rows = %d", len(table.Rows))
	}
	// Column 3 is the power reduction: Colosse ~0, TSUBAME-KFC ~10.9%.
	byName := map[string][]string{}
	for _, row := range table.Rows {
		byName[row[0]] = row
	}
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("unparsable percent %q", s)
		}
		return v
	}
	if v := parsePct(byName["Colosse"][3]); v > 0.5 {
		t.Errorf("Colosse gaming = %v%%, want ~0", v)
	}
	if v := parsePct(byName["TSUBAME-KFC"][3]); v < 9 || v > 13 {
		t.Errorf("TSUBAME-KFC power reduction = %v%%, paper says 10.9%%", v)
	}
	if v := parsePct(byName["L-CSC"][4]); v < 17 {
		t.Errorf("L-CSC efficiency gain = %v%%, paper says 23.9%% (model reaches ~20%%)", v)
	}
	// With the DVFS valley modeled the full published figure is reached.
	if v := parsePct(byName["L-CSC + 4.5% DVFS valley"][4]); v < 22 || v > 26 {
		t.Errorf("L-CSC+DVFS efficiency gain = %v%%, paper says 23.9%%", v)
	}
	if v := parsePct(byName["Piz Daint"][3]); v < 8 {
		t.Errorf("Piz Daint gaming = %v%%, expected substantial", v)
	}
}

func TestRulesStudy(t *testing.T) {
	res, err := Run(Rules, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables()[0]
	if len(table.Rows) != 5 {
		t.Fatalf("rules rows = %d", len(table.Rows))
	}
	spread := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "%"), 64)
		if err != nil {
			t.Fatalf("unparsable spread %q", row[6])
		}
		return v
	}
	var l1Random, l3, revised []string
	for _, row := range table.Rows {
		switch {
		case strings.HasPrefix(row[0], "Level 1 (random"):
			l1Random = row
		case row[0] == "Level 3":
			l3 = row
		case strings.HasPrefix(row[0], "Revised"):
			revised = row
		}
	}
	// The paper's core claims, end to end: Level 1 permits a large
	// spread; Level 3 is essentially exact; the revised rule shrinks the
	// spread by an order of magnitude relative to Level 1.
	if spread(l1Random) < 5 {
		t.Errorf("Level 1 spread = %v%%, expected large on a GPU machine", spread(l1Random))
	}
	if spread(l3) > 0.01 {
		t.Errorf("Level 3 spread = %v%%, want ~0", spread(l3))
	}
	if spread(revised) > spread(l1Random)/4 {
		t.Errorf("revised rule spread %v%% not well below Level 1 %v%%",
			spread(revised), spread(l1Random))
	}
	// Rule-size table includes the paper's flagship numbers.
	out := renderOf(t, Rules)
	if !strings.Contains(out, "1869") { // revised rule on Titan-size machine
		t.Errorf("rules table missing Titan-scale revised count:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	results, err := RunAll(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	for _, r := range results {
		var b strings.Builder
		if err := r.Render(&b); err != nil {
			t.Errorf("%s: %v", r.ID(), err)
		}
		if b.Len() == 0 {
			t.Errorf("%s rendered nothing", r.ID())
		}
	}
}

func TestAblationStudy(t *testing.T) {
	res, err := Run(Ablation, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables()) != 5 {
		t.Fatalf("ablation tables = %d", len(res.Tables()))
	}
	out := renderOf(t, Ablation)
	for _, want := range []string{
		"t coverage", "z under-coverage",
		"heavily skewed", "bimodal",
		"finite population correction",
		"pinned to one speed",
		"near-normal",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	// The balance ablation flags the imbalanced run as non-normal and
	// the balanced one as normal.
	bal := res.Tables()[4]
	if bal.Rows[0][3] != "true" || bal.Rows[1][3] != "false" {
		t.Errorf("balance verdicts = %v / %v", bal.Rows[0], bal.Rows[1])
	}
}

func TestVarianceDecomposition(t *testing.T) {
	res, err := Run(VarianceDecomp, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables()[0]
	if len(table.Rows) != 5 {
		t.Fatalf("variance rows = %d", len(table.Rows))
	}
	sd := func(i int) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(table.Rows[i][1], "%"), 64)
		if err != nil {
			t.Fatalf("unparsable sd %q", table.Rows[i][1])
		}
		return v
	}
	window, subset, instrument, allL1, revised := sd(0), sd(1), sd(2), sd(3), sd(4)
	// The paper's hierarchy on a GPU machine: window placement dominates,
	// then instrument/subset; the revised rule reduces the total to the
	// instrument-limited floor.
	if !(window > 5*subset && window > 5*instrument) {
		t.Errorf("window sd %v does not dominate subset %v / instrument %v",
			window, subset, instrument)
	}
	if allL1 < window/2 {
		t.Errorf("combined L1 sd %v implausibly below window-only %v", allL1, window)
	}
	if revised > instrument*2+subset*2+0.5 {
		t.Errorf("revised-rule sd %v not instrument-limited (instrument %v)", revised, instrument)
	}
}
