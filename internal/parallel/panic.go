package parallel

import "fmt"

// PanicError reports a panic recovered inside a worker goroutine. The
// parallel executors never let a worker panic kill the process: the
// panic value and the worker's stack are captured, remaining work is
// abandoned, and the call fails with this typed error (context-aware
// entry points return it; the legacy void entry points re-panic with it
// on the calling goroutine, where a caller's recover can see it).
type PanicError struct {
	// Value is the value originally passed to panic.
	Value any
	// Stack is the panicking worker goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", e.Value)
}
