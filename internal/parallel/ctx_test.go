package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"nodevar/internal/rng"
)

func TestForCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int64
	err := ForCtx(ctx, 1000, func(i int) { atomic.AddInt64(&calls, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("%d body calls after pre-canceled context, want 0", calls)
	}
}

func TestForCtxCancelMidRunNeverTearsChunks(t *testing.T) {
	// Cancel partway through; every index either ran exactly once or not
	// at all, and whole chunks are the unit — a started chunk finishes.
	const n = 10000
	ctx, cancel := context.WithCancel(context.Background())
	var counts [n]int64
	var seen atomic.Int64
	err := ForCtx(ctx, n, func(i int) {
		if seen.Add(1) == 50 {
			cancel()
		}
		atomic.AddInt64(&counts[i], 1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ran := 0
	for i, c := range counts {
		if c > 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
		ran += int(c)
	}
	if ran == 0 || ran == n {
		t.Fatalf("ran %d of %d indices; want a genuine partial run", ran, n)
	}
	// Chunk atomicity: within each scheduled chunk, the indices that ran
	// form complete chunks, never a prefix of one.
	for _, r := range itemRanges(n) {
		chunkRan := 0
		for i := r.Lo; i < r.Hi; i++ {
			chunkRan += int(counts[i])
		}
		if chunkRan != 0 && chunkRan != r.Hi-r.Lo {
			t.Fatalf("chunk %+v partially ran (%d of %d): torn chunk", r, chunkRan, r.Hi-r.Lo)
		}
	}
}

func TestForCtxCompletesWithoutCancel(t *testing.T) {
	const n = 500
	var counts [n]int64
	if err := ForCtx(context.Background(), n, func(i int) { atomic.AddInt64(&counts[i], 1) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestWorkerPanicSurfacesAsPanicError(t *testing.T) {
	err := ForCtx(context.Background(), 100, func(i int) {
		if i == 37 {
			panic("boom at 37")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "boom at 37" {
		t.Errorf("PanicError.Value = %v, want boom at 37", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "parallel") {
		t.Errorf("PanicError.Stack missing or unhelpful: %q", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "boom at 37") {
		t.Errorf("Error() = %q, want it to mention the panic value", pe.Error())
	}
}

func TestWorkerPanicCountsMetricAndAborts(t *testing.T) {
	before := mParPanics.Value()
	var after atomic.Int64
	err := ForDynamicCtx(context.Background(), 64, func(i int) {
		if i == 0 {
			panic("first item dies")
		}
		after.Add(1)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if got := mParPanics.Value() - before; got < 1 {
		t.Errorf("panic metric advanced by %d, want >= 1", got)
	}
	// Remaining work is abandoned: strictly fewer than all other items ran.
	if after.Load() >= 63 {
		t.Errorf("%d items ran after the panic; abort did not stop scheduling", after.Load())
	}
}

func TestLegacyForRePanicsWithPanicError(t *testing.T) {
	defer func() {
		v := recover()
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicError", v, v)
		}
		if pe.Value != "legacy boom" {
			t.Errorf("PanicError.Value = %v", pe.Value)
		}
	}()
	For(10, func(i int) {
		if i == 3 {
			panic("legacy boom")
		}
	})
	t.Fatal("For returned instead of panicking")
}

func TestMetricsFlushedOnErrorPaths(t *testing.T) {
	// Satellite: wall/busy counters must be flushed even when the call
	// fails early (cancellation or panic), not only on success.
	wall0, busy0, calls0 := fParWall.Value(), fParBusy.Value(), mParCalls.Value()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = ForCtx(ctx, 1000, func(int) {})

	_ = ForCtx(context.Background(), 1000, func(i int) {
		if i == 0 {
			panic("metric flush check")
		}
	})

	if got := mParCalls.Value() - calls0; got != 2 {
		t.Errorf("calls advanced by %d, want 2", got)
	}
	if fParWall.Value() <= wall0 {
		t.Error("wall counter not flushed on error paths")
	}
	if fParBusy.Value() < busy0 {
		t.Error("busy counter went backwards")
	}
}

func TestMapCtxPartialOnCancel(t *testing.T) {
	const n = 8192
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	out, err := MapCtx(ctx, n, func(i int) float64 {
		if seen.Add(1) == 20 {
			cancel()
		}
		return float64(i) + 1 // never zero, so written entries are detectable
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != n {
		t.Fatalf("len(out) = %d, want %d", len(out), n)
	}
	wrote := 0
	for i, v := range out {
		if v != 0 && v != float64(i)+1 {
			t.Fatalf("out[%d] = %v: torn value", i, v)
		}
		if v != 0 {
			wrote++
		}
	}
	if wrote == 0 || wrote == n {
		t.Fatalf("wrote %d of %d; want a genuine partial result", wrote, n)
	}
}

func TestMapCtxComplete(t *testing.T) {
	out, err := MapCtx(context.Background(), 100, func(i int) float64 { return float64(i * i) })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range out {
		if v != float64(i*i) {
			t.Fatalf("out[%d] = %v, want %d", i, v, i*i)
		}
	}
}

func TestForSeededChunksCtxMatchesLegacy(t *testing.T) {
	// The ctx variant with a background context must be bit-identical to
	// the legacy entry point: same chunking, same stream derivation.
	const n, chunks = 1000, 16
	legacy := make([]float64, n)
	ForSeededChunks(n, chunks, rng.New(99), func(r Range, s *rng.Rand) {
		for i := r.Lo; i < r.Hi; i++ {
			legacy[i] = s.Float64()
		}
	})
	viaCtx := make([]float64, n)
	err := ForSeededChunksCtx(context.Background(), n, chunks, rng.New(99), func(r Range, s *rng.Rand) {
		for i := r.Lo; i < r.Hi; i++ {
			viaCtx[i] = s.Float64()
		}
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i := range legacy {
		if legacy[i] != viaCtx[i] {
			t.Fatalf("divergence at %d: %v != %v", i, legacy[i], viaCtx[i])
		}
	}
}

func TestForRangesCtxSubsetMatchesFullRun(t *testing.T) {
	// The resume primitive: running only a subset of chunks with streams
	// derived by ChunkStreams reproduces exactly the full run's values
	// for those chunks.
	const n, chunks = 1000, 16
	full := make([]float64, n)
	ForSeededChunks(n, chunks, rng.New(7), func(r Range, s *rng.Rand) {
		for i := r.Lo; i < r.Hi; i++ {
			full[i] = s.Float64()
		}
	})

	ranges := SplitRange(n, chunks)
	streams := ChunkStreams(rng.New(7), len(ranges))
	// Re-run only the odd-indexed chunks, as a resume would.
	var odd []Range
	var oddIdx []int
	for ci, r := range ranges {
		if ci%2 == 1 {
			odd = append(odd, r)
			oddIdx = append(oddIdx, ci)
		}
	}
	partial := make([]float64, n)
	err := ForRangesCtx(context.Background(), odd, func(ci int, r Range) {
		s := streams[oddIdx[ci]]
		for i := r.Lo; i < r.Hi; i++ {
			partial[i] = s.Float64()
		}
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for _, ci := range oddIdx {
		r := ranges[ci]
		for i := r.Lo; i < r.Hi; i++ {
			if partial[i] != full[i] {
				t.Fatalf("resumed chunk %d diverged at index %d: %v != %v", ci, i, partial[i], full[i])
			}
		}
	}
}

func TestChunkStreamsDerivationIsPrefixStable(t *testing.T) {
	// Stream k of ChunkStreams(parent, m) must not depend on m beyond
	// k < m: the derivation is sequential splits, so a longer list is a
	// superset. Checkpoint fingerprints rely on this.
	a := ChunkStreams(rng.New(42), 4)
	b := ChunkStreams(rng.New(42), 8)
	for i := 0; i < 4; i++ {
		if a[i].Float64() != b[i].Float64() {
			t.Fatalf("stream %d differs between k=4 and k=8 derivations", i)
		}
	}
}

func TestForDynamicCtxCompletes(t *testing.T) {
	const n = 200
	var counts [n]int64
	if err := ForDynamicCtx(context.Background(), n, func(i int) { atomic.AddInt64(&counts[i], 1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}
