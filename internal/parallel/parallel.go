// Package parallel provides small, deterministic parallel-execution
// helpers used by the simulation and bootstrap engines.
//
// The design goal is reproducibility under parallelism: work is divided
// into index ranges up front, each range can be handed its own RNG stream,
// and results are written to caller-owned, pre-sized slices so that the
// outcome never depends on goroutine scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nodevar/internal/obs"
	"nodevar/internal/rng"
)

// Scheduler metrics. Utilization is cumulative worker-busy seconds over
// cumulative worker-wall seconds (workers x call wall time): 1.0 means
// every worker was busy for the whole call, lower values expose load
// imbalance or stragglers. Timing is per worker per call — two clock
// reads around an entire chunk of work — so the overhead is invisible
// next to the work itself.
var (
	mParCalls = obs.NewCounter("parallel.calls")
	mParItems = obs.NewCounter("parallel.items")
	fParBusy  = obs.NewFloatCounter("parallel.worker_busy_seconds")
	fParWall  = obs.NewFloatCounter("parallel.worker_wall_seconds")
	gParUtil  = obs.NewGauge("parallel.utilization")
)

// observeCall records one completed parallel call's shape and refreshes
// the cumulative utilization gauge.
func observeCall(items, workers int, wall time.Duration) {
	mParCalls.Inc()
	mParItems.Add(int64(items))
	fParWall.Add(wall.Seconds() * float64(workers))
	if w := fParWall.Value(); w > 0 {
		gParUtil.Set(fParBusy.Value() / w)
	}
}

// Workers returns the degree of parallelism to use: the smaller of
// GOMAXPROCS and n (never below 1). Passing n <= 0 means "no cap".
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if n > 0 && w > n {
		w = n
	}
	return w
}

// Range describes a half-open index interval [Lo, Hi) assigned to one worker.
type Range struct {
	Lo, Hi int
}

// SplitRange divides [0, n) into at most parts contiguous, near-equal
// ranges. Empty ranges are omitted, so the result may be shorter than
// parts. It panics if parts <= 0 or n < 0.
func SplitRange(n, parts int) []Range {
	if parts <= 0 {
		panic("parallel: SplitRange with parts <= 0")
	}
	if n < 0 {
		panic("parallel: SplitRange with n < 0")
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, Range{Lo: lo, Hi: hi})
		}
	}
	return out
}

// For runs body(i) for every i in [0, n), distributing contiguous index
// ranges across up to Workers(n) goroutines. It blocks until all calls
// return. body must be safe for concurrent invocation on distinct indices.
func For(n int, body func(i int)) {
	ForChunked(n, func(r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body once per contiguous chunk of [0, n), one chunk per
// worker goroutine. Use it when per-item dispatch overhead matters or the
// body wants to keep per-chunk state.
func ForChunked(n int, body func(r Range)) {
	if n <= 0 {
		return
	}
	ranges := SplitRange(n, Workers(n))
	t0 := time.Now()
	if len(ranges) == 1 {
		body(ranges[0])
		wall := time.Since(t0)
		fParBusy.Add(wall.Seconds())
		observeCall(n, 1, wall)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for _, r := range ranges {
		go func(r Range) {
			defer wg.Done()
			tw := time.Now()
			body(r)
			fParBusy.Add(time.Since(tw).Seconds())
		}(r)
	}
	wg.Wait()
	observeCall(n, len(ranges), time.Since(t0))
}

// ForDynamic runs body(i) for every i in [0, n) with dynamic scheduling:
// workers pull the next index from a shared counter instead of owning a
// fixed range, so wildly heterogeneous per-item costs balance
// automatically. body must be safe for concurrent invocation on distinct
// indices and should write results to caller-owned, index-addressed
// storage, which keeps the outcome independent of scheduling order.
func ForDynamic(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	t0 := time.Now()
	if w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		wall := time.Since(t0)
		fParBusy.Add(wall.Seconds())
		observeCall(n, 1, wall)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			tw := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					fParBusy.Add(time.Since(tw).Seconds())
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	observeCall(n, w, time.Since(t0))
}

// ForSeeded runs body(i, r) for every i in [0, n), where each worker chunk
// receives its own RNG split deterministically from parent. The assignment
// of streams to chunks is fixed by (n, GOMAXPROCS at call time); for
// GOMAXPROCS-independent determinism use ForSeededChunks with a fixed chunk
// count.
func ForSeeded(n int, parent *rng.Rand, body func(i int, r *rng.Rand)) {
	if n <= 0 {
		return
	}
	ranges := SplitRange(n, Workers(n))
	streams := make([]*rng.Rand, len(ranges))
	for i := range streams {
		streams[i] = parent.Split()
	}
	t0 := time.Now()
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for ci, r := range ranges {
		go func(ci int, r Range) {
			defer wg.Done()
			tw := time.Now()
			s := streams[ci]
			for i := r.Lo; i < r.Hi; i++ {
				body(i, s)
			}
			fParBusy.Add(time.Since(tw).Seconds())
		}(ci, r)
	}
	wg.Wait()
	observeCall(n, len(ranges), time.Since(t0))
}

// ForSeededChunks divides [0, n) into exactly chunks ranges (fewer if
// n < chunks), derives one RNG stream per range from parent, and runs the
// ranges across the available workers. Because the chunk decomposition and
// stream assignment depend only on (n, chunks, parent state), results are
// bit-identical regardless of GOMAXPROCS.
func ForSeededChunks(n, chunks int, parent *rng.Rand, body func(r Range, stream *rng.Rand)) {
	if n <= 0 {
		return
	}
	if chunks <= 0 {
		chunks = 1
	}
	ranges := SplitRange(n, chunks)
	streams := make([]*rng.Rand, len(ranges))
	for i := range streams {
		streams[i] = parent.Split()
	}
	workers := Workers(len(ranges))
	t0 := time.Now()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for ci, r := range ranges {
		sem <- struct{}{}
		go func(ci int, r Range) {
			defer func() { <-sem; wg.Done() }()
			tw := time.Now()
			body(r, streams[ci])
			fParBusy.Add(time.Since(tw).Seconds())
		}(ci, r)
	}
	wg.Wait()
	observeCall(n, workers, time.Since(t0))
}

// MapReduceFloat64 computes a parallel map over [0, n) followed by a
// deterministic sequential reduction. Each index i is mapped to a float64;
// partial slices are reduced in index order so floating-point summation
// order is stable.
func MapReduceFloat64(n int, mapper func(i int) float64, init float64, reducer func(acc, v float64) float64) float64 {
	if n <= 0 {
		return init
	}
	vals := make([]float64, n)
	For(n, func(i int) { vals[i] = mapper(i) })
	acc := init
	for _, v := range vals {
		acc = reducer(acc, v)
	}
	return acc
}

// Sum computes the sum of mapper(i) for i in [0, n) with parallel mapping
// and a stable, index-ordered reduction.
func Sum(n int, mapper func(i int) float64) float64 {
	return MapReduceFloat64(n, mapper, 0, func(a, v float64) float64 { return a + v })
}
