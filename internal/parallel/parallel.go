// Package parallel provides small, deterministic parallel-execution
// helpers used by the simulation and bootstrap engines.
//
// The design goal is reproducibility under parallelism: work is divided
// into index ranges up front, each range can be handed its own RNG stream,
// and results are written to caller-owned, pre-sized slices so that the
// outcome never depends on goroutine scheduling.
//
// Every entry point has a context-aware variant (ForCtx, MapCtx,
// ForDynamicCtx, ForSeededChunksCtx, ForRangesCtx) that checks for
// cancellation cooperatively at chunk boundaries: a canceled call stops
// scheduling new chunks, lets in-flight chunks finish, and returns
// ctx.Err(). Chunks are never torn — a chunk either ran to completion or
// never started — so index-addressed partial results remain usable.
// Worker panics are isolated on every path: the panic is recovered,
// counted, and surfaced as a *PanicError instead of crashing the process.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nodevar/internal/obs"
	"nodevar/internal/rng"
)

// Scheduler metrics. Utilization is cumulative worker-busy seconds over
// cumulative worker-wall seconds (workers x call wall time): 1.0 means
// every worker was busy for the whole call, lower values expose load
// imbalance or stragglers. Timing is per worker per call — two clock
// reads around an entire chunk of work — so the overhead is invisible
// next to the work itself. Both counters are flushed in defers, so calls
// that end early (cancellation, a recovered worker panic) still account
// their wall and busy time instead of silently under-reporting
// utilization.
var (
	mParCalls  = obs.NewCounter("parallel.calls")
	mParItems  = obs.NewCounter("parallel.items")
	mParPanics = obs.NewCounter("parallel.worker_panics_recovered")
	fParBusy   = obs.NewFloatCounter("parallel.worker_busy_seconds")
	fParWall   = obs.NewFloatCounter("parallel.worker_wall_seconds")
	gParUtil   = obs.NewGauge("parallel.utilization")
)

// observeCall records one completed parallel call's shape and refreshes
// the cumulative utilization gauge.
func observeCall(items, workers int, wall time.Duration) {
	mParCalls.Inc()
	mParItems.Add(int64(items))
	fParWall.Add(wall.Seconds() * float64(workers))
	if w := fParWall.Value(); w > 0 {
		gParUtil.Set(fParBusy.Value() / w)
	}
}

// Workers returns the degree of parallelism to use: the smaller of
// GOMAXPROCS and n (never below 1). Passing n <= 0 means "no cap".
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if n > 0 && w > n {
		w = n
	}
	return w
}

// Range describes a half-open index interval [Lo, Hi) assigned to one worker.
type Range struct {
	Lo, Hi int
}

// SplitRange divides [0, n) into at most parts contiguous, near-equal
// ranges. Empty ranges are omitted, so the result may be shorter than
// parts. It panics if parts <= 0 or n < 0.
func SplitRange(n, parts int) []Range {
	if parts <= 0 {
		panic("parallel: SplitRange with parts <= 0")
	}
	if n < 0 {
		panic("parallel: SplitRange with n < 0")
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, Range{Lo: lo, Hi: hi})
		}
	}
	return out
}

// exec is the shared executor behind every entry point: it runs the
// listed ranges across up to workers goroutines, pulling the next range
// from a shared counter (dynamic scheduling). Cancellation is checked
// before each range is claimed, so a canceled call returns after the
// in-flight ranges finish — never mid-range. A panicking range aborts
// the remaining schedule and the call returns a *PanicError carrying the
// panic value and worker stack. Wall and busy accounting is flushed in
// defers so failed calls report utilization too.
func exec(ctx context.Context, items, workers int, ranges []Range, body func(ci int, r Range)) error {
	if len(ranges) == 0 {
		return ctx.Err()
	}
	if workers > len(ranges) {
		workers = len(ranges)
	}
	if workers < 1 {
		workers = 1
	}
	t0 := time.Now()
	defer func() { observeCall(items, workers, time.Since(t0)) }()

	var (
		next      atomic.Int64
		panicOnce sync.Once
		pErr      *PanicError
		aborted   atomic.Bool
	)
	runRange := func(ci int) {
		defer func() {
			if v := recover(); v != nil {
				mParPanics.Inc()
				pe := &PanicError{Value: v, Stack: debug.Stack()}
				panicOnce.Do(func() { pErr = pe })
				aborted.Store(true)
			}
		}()
		// Inside a traced request each claimed range gets its own span
		// (worker-level visibility). Only a context-carried span records
		// here — never the process-tracer fallback, whose ring a
		// range-per-span flood would evict — so plain CLI runs see no
		// change and the disabled path stays free.
		var sp obs.Span
		if _, ok := obs.SpanRefFromContext(ctx); ok {
			sp, _ = obs.StartSpanCtx(ctx, "parallel", "range")
		}
		body(ci, ranges[ci])
		sp.End()
	}
	worker := func() {
		tw := time.Now()
		defer func() { fParBusy.Add(time.Since(tw).Seconds()) }()
		for {
			if aborted.Load() || ctx.Err() != nil {
				return
			}
			ci := int(next.Add(1)) - 1
			if ci >= len(ranges) {
				return
			}
			runRange(ci)
		}
	}
	if workers == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for k := 0; k < workers; k++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	if pErr != nil {
		return pErr
	}
	return ctx.Err()
}

// itemRanges covers [0, n) with per-worker chunking fine enough that a
// cancellation check lands every few percent of the work: workers * 8
// chunks, capped at n.
func itemRanges(n int) []Range {
	return SplitRange(n, Workers(n)*8)
}

// sumItems returns the total index count covered by the ranges.
func sumItems(ranges []Range) int {
	total := 0
	for _, r := range ranges {
		total += r.Hi - r.Lo
	}
	return total
}

// must adapts a context-free executor call to the legacy void API: with
// context.Background() the only possible failure is a recovered worker
// panic, which is re-raised on the calling goroutine so a caller's
// recover can observe the *PanicError (the process no longer dies on an
// unrelated goroutine's stack).
func must(err error) {
	if err == nil {
		return
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
	panic(err)
}

// ForCtx runs body(i) for every i in [0, n), distributing contiguous
// index chunks across up to Workers(n) goroutines and checking ctx
// between chunks. On cancellation it returns ctx.Err(); every index
// whose chunk started has run to completion, and no other index was
// touched, so caller-owned index-addressed results are never torn.
// body must be safe for concurrent invocation on distinct indices.
func ForCtx(ctx context.Context, n int, body func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	return exec(ctx, n, Workers(n), itemRanges(n), func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			body(i)
		}
	})
}

// For runs body(i) for every i in [0, n). It blocks until all calls
// return. A worker panic is re-raised on the calling goroutine as a
// *PanicError. body must be safe for concurrent invocation on distinct
// indices.
func For(n int, body func(i int)) {
	must(ForCtx(context.Background(), n, body))
}

// ForChunked runs body once per contiguous chunk of [0, n), one chunk per
// worker goroutine. Use it when per-item dispatch overhead matters or the
// body wants to keep per-chunk state.
func ForChunked(n int, body func(r Range)) {
	must(ForChunkedCtx(context.Background(), n, body))
}

// ForChunkedCtx is ForChunked with cooperative cancellation between
// chunks and panic isolation (see ForCtx for the contract).
func ForChunkedCtx(ctx context.Context, n int, body func(r Range)) error {
	if n <= 0 {
		return ctx.Err()
	}
	ranges := SplitRange(n, Workers(n))
	return exec(ctx, n, Workers(n), ranges, func(_ int, r Range) { body(r) })
}

// ForDynamic runs body(i) for every i in [0, n) with dynamic scheduling:
// workers pull the next index from a shared counter instead of owning a
// fixed range, so wildly heterogeneous per-item costs balance
// automatically. body must be safe for concurrent invocation on distinct
// indices and should write results to caller-owned, index-addressed
// storage, which keeps the outcome independent of scheduling order.
func ForDynamic(n int, body func(i int)) {
	must(ForDynamicCtx(context.Background(), n, body))
}

// ForDynamicCtx is ForDynamic with cooperative cancellation between
// items and panic isolation: a canceled call stops dispatching, finishes
// the in-flight items, and returns ctx.Err(); a worker panic surfaces as
// a *PanicError.
func ForDynamicCtx(ctx context.Context, n int, body func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	ranges := make([]Range, n)
	for i := range ranges {
		ranges[i] = Range{Lo: i, Hi: i + 1}
	}
	return exec(ctx, n, Workers(n), ranges, func(_ int, r Range) { body(r.Lo) })
}

// ForSeeded runs body(i, r) for every i in [0, n), where each worker chunk
// receives its own RNG split deterministically from parent. The assignment
// of streams to chunks is fixed by (n, GOMAXPROCS at call time); for
// GOMAXPROCS-independent determinism use ForSeededChunks with a fixed chunk
// count.
func ForSeeded(n int, parent *rng.Rand, body func(i int, r *rng.Rand)) {
	if n <= 0 {
		return
	}
	ranges := SplitRange(n, Workers(n))
	streams := ChunkStreams(parent, len(ranges))
	must(exec(context.Background(), n, Workers(n), ranges, func(ci int, r Range) {
		s := streams[ci]
		for i := r.Lo; i < r.Hi; i++ {
			body(i, s)
		}
	}))
}

// ChunkStreams derives one child RNG stream per chunk from parent, in
// chunk order. The derivation consumes exactly k values from parent, so
// the mapping from chunk index to stream depends only on (parent state,
// k) — the property the checkpoint/resume machinery relies on to re-run
// an arbitrary subset of chunks bit-identically.
func ChunkStreams(parent *rng.Rand, k int) []*rng.Rand {
	streams := make([]*rng.Rand, k)
	for i := range streams {
		streams[i] = parent.Split()
	}
	return streams
}

// ForSeededChunks divides [0, n) into exactly chunks ranges (fewer if
// n < chunks), derives one RNG stream per range from parent, and runs the
// ranges across the available workers. Because the chunk decomposition and
// stream assignment depend only on (n, chunks, parent state), results are
// bit-identical regardless of GOMAXPROCS.
func ForSeededChunks(n, chunks int, parent *rng.Rand, body func(r Range, stream *rng.Rand)) {
	must(ForSeededChunksCtx(context.Background(), n, chunks, parent, body))
}

// ForSeededChunksCtx is ForSeededChunks with cooperative cancellation at
// chunk boundaries and panic isolation: a canceled call stops claiming
// new chunks, lets running chunks complete (a chunk is never torn), and
// returns ctx.Err(). Callers that record per-chunk results therefore see
// only whole chunks — the invariant checkpoint/resume builds on.
func ForSeededChunksCtx(ctx context.Context, n, chunks int, parent *rng.Rand, body func(r Range, stream *rng.Rand)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if chunks <= 0 {
		chunks = 1
	}
	ranges := SplitRange(n, chunks)
	streams := ChunkStreams(parent, len(ranges))
	return exec(ctx, n, Workers(len(ranges)), ranges, func(ci int, r Range) {
		body(r, streams[ci])
	})
}

// ForRangesCtx runs body once per listed range across the available
// workers, checking ctx between ranges. The ci argument is the index
// into ranges, so a caller that pre-derived per-range state (RNG
// streams, accumulators) can address it directly. This is the primitive
// the resumable coverage study uses to execute exactly the chunks a
// checkpoint says are still missing.
func ForRangesCtx(ctx context.Context, ranges []Range, body func(ci int, r Range)) error {
	return exec(ctx, sumItems(ranges), Workers(len(ranges)), ranges, body)
}

// MapCtx computes mapper(i) for every i in [0, n) in parallel and
// returns the results in index order. On cancellation the returned
// slice still holds every value whose chunk completed (other entries are
// zero) alongside ctx.Err(); entries are never torn.
func MapCtx(ctx context.Context, n int, mapper func(i int) float64) ([]float64, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]float64, n)
	err := ForCtx(ctx, n, func(i int) { out[i] = mapper(i) })
	return out, err
}

// MapReduceFloat64 computes a parallel map over [0, n) followed by a
// deterministic sequential reduction. Each index i is mapped to a float64;
// partial slices are reduced in index order so floating-point summation
// order is stable.
func MapReduceFloat64(n int, mapper func(i int) float64, init float64, reducer func(acc, v float64) float64) float64 {
	if n <= 0 {
		return init
	}
	vals, err := MapCtx(context.Background(), n, mapper)
	must(err)
	acc := init
	for _, v := range vals {
		acc = reducer(acc, v)
	}
	return acc
}

// Sum computes the sum of mapper(i) for i in [0, n) with parallel mapping
// and a stable, index-ordered reduction.
func Sum(n int, mapper func(i int) float64) float64 {
	return MapReduceFloat64(n, mapper, 0, func(a, v float64) float64 { return a + v })
}
