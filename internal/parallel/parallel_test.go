package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nodevar/internal/rng"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != max {
		t.Errorf("Workers(0) = %d, want %d", got, max)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	if got := Workers(max + 100); got != max {
		t.Errorf("Workers(max+100) = %d, want %d", got, max)
	}
}

func TestSplitRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 1}, {1, 1}, {10, 3}, {10, 10}, {10, 20}, {100, 7}, {3, 4},
	} {
		ranges := SplitRange(tc.n, tc.parts)
		covered := make([]int, tc.n)
		for _, r := range ranges {
			if r.Lo >= r.Hi {
				t.Fatalf("SplitRange(%d,%d) produced empty range %+v", tc.n, tc.parts, r)
			}
			for i := r.Lo; i < r.Hi; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("SplitRange(%d,%d): index %d covered %d times", tc.n, tc.parts, i, c)
			}
		}
	}
}

func TestSplitRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SplitRange with parts=0 did not panic")
		}
	}()
	SplitRange(10, 0)
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]int64
	For(n, func(i int) { atomic.AddInt64(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(i int) { called = true })
	For(-5, func(i int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForChunkedCoverage(t *testing.T) {
	const n = 257
	var counts [n]int64
	ForChunked(n, func(r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			atomic.AddInt64(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForSeededCoverage(t *testing.T) {
	const n = 100
	var counts [n]int64
	ForSeeded(n, rng.New(1), func(i int, r *rng.Rand) {
		_ = r.Float64()
		atomic.AddInt64(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForSeededChunksDeterministic(t *testing.T) {
	// Same n, chunks and seed must give bit-identical output regardless of
	// scheduling, because each chunk owns its stream and output range.
	const n, chunks = 1000, 16
	run := func() []float64 {
		out := make([]float64, n)
		ForSeededChunks(n, chunks, rng.New(99), func(r Range, stream *rng.Rand) {
			for i := r.Lo; i < r.Hi; i++ {
				out[i] = stream.Float64()
			}
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ForSeededChunks not deterministic at index %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestForSeededChunksChunkCount(t *testing.T) {
	var calls int64
	ForSeededChunks(100, 7, rng.New(1), func(r Range, s *rng.Rand) {
		atomic.AddInt64(&calls, 1)
	})
	if calls != 7 {
		t.Errorf("got %d chunk calls, want 7", calls)
	}
	calls = 0
	ForSeededChunks(3, 10, rng.New(1), func(r Range, s *rng.Rand) {
		atomic.AddInt64(&calls, 1)
	})
	if calls != 3 {
		t.Errorf("got %d chunk calls for n=3, want 3", calls)
	}
}

func TestMapReduceOrderStable(t *testing.T) {
	// Floating-point catastrophic-cancellation construction: order matters,
	// so two identical runs must agree exactly.
	f := func(i int) float64 { return math.Pow(-1, float64(i)) / float64(i+1) }
	a := MapReduceFloat64(10001, f, 0, func(acc, v float64) float64 { return acc + v })
	b := MapReduceFloat64(10001, f, 0, func(acc, v float64) float64 { return acc + v })
	if a != b {
		t.Fatalf("MapReduceFloat64 unstable: %v != %v", a, b)
	}
	// The alternating harmonic series converges to ln 2.
	if math.Abs(a-math.Ln2) > 1e-3 {
		t.Errorf("sum = %v, want ~ln2 = %v", a, math.Ln2)
	}
}

func TestSum(t *testing.T) {
	got := Sum(100, func(i int) float64 { return float64(i) })
	if got != 4950 {
		t.Errorf("Sum = %v, want 4950", got)
	}
	if got := Sum(0, func(i int) float64 { return 1 }); got != 0 {
		t.Errorf("Sum over empty range = %v, want 0", got)
	}
}

// Property: SplitRange pieces are ordered and contiguous.
func TestQuickSplitRangeContiguous(t *testing.T) {
	f := func(n, parts uint8) bool {
		p := int(parts%32) + 1
		ranges := SplitRange(int(n), p)
		prev := 0
		for _, r := range ranges {
			if r.Lo != prev || r.Hi <= r.Lo {
				return false
			}
			prev = r.Hi
		}
		return prev == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, func(int) {})
	}
}

func BenchmarkSumParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Sum(100000, func(i int) float64 { return math.Sqrt(float64(i)) })
	}
}
