package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format 0.0.4, written without any external
// dependency. Metric names are the registry's dotted names with every
// character outside [a-zA-Z0-9_:] replaced by '_' (so
// "server.cache.hits" scrapes as "server_cache_hits"); label values are
// escaped per the format spec (backslash, double quote, newline).

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name grammar.
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// formatPromValue renders a sample value the way Prometheus expects,
// including the +Inf/-Inf/NaN spellings.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders {l1="v1",l2="v2"}; both slices must be equal
// length. extra, when non-empty, appends one more pair (the histogram
// "le" label).
func promLabels(labels, values []string, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// promFamily is one exposition family being assembled: a TYPE line plus
// its sample lines.
type promFamily struct {
	typ   string
	lines []string
}

// WritePrometheus writes every metric in the registry in Prometheus text
// exposition format 0.0.4. Output is deterministic: families sort by
// exposition name, labelled children by label key, histogram buckets
// ascend with +Inf last. Scalar counters and float counters expose as
// counter, gauges as gauge, histograms as the _bucket/_sum/_count triple
// with cumulative le buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := map[string]*promFamily{}
	family := func(name, typ string) (*promFamily, error) {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ}
			fams[name] = f
			return f, nil
		}
		if f.typ != typ {
			return nil, fmt.Errorf("obs: exposition name %s used as both %s and %s", name, f.typ, typ)
		}
		return f, nil
	}
	scalar := func(name, typ string, labels, values []string, v float64) error {
		pn := sanitizeMetricName(name)
		f, err := family(pn, typ)
		if err != nil {
			return err
		}
		f.lines = append(f.lines, pn+promLabels(labels, values, "", "")+" "+formatPromValue(v))
		return nil
	}
	histogram := func(name string, labels, values []string, s HistogramSnapshot) error {
		pn := sanitizeMetricName(name)
		f, err := family(pn, "histogram")
		if err != nil {
			return err
		}
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			f.lines = append(f.lines,
				pn+"_bucket"+promLabels(labels, values, "le", formatPromValue(b))+" "+strconv.FormatInt(cum, 10))
		}
		f.lines = append(f.lines,
			pn+"_bucket"+promLabels(labels, values, "le", "+Inf")+" "+strconv.FormatInt(s.Count, 10),
			pn+"_sum"+promLabels(labels, values, "", "")+" "+formatPromValue(s.Sum),
			pn+"_count"+promLabels(labels, values, "", "")+" "+strconv.FormatInt(s.Count, 10))
		return nil
	}

	// Snapshot the registry maps under the lock, then walk each kind in
	// sorted-name order so lines land in families deterministically
	// (sorted children, ascending buckets) without a lexical line sort.
	r.mu.Lock()
	counters := sortedEntries(r.counters)
	gauges := sortedEntries(r.gauges)
	floats := sortedEntries(r.floats)
	hists := sortedEntries(r.hists)
	counterVecs := sortedEntries(r.counterVecs)
	gaugeVecs := sortedEntries(r.gaugeVecs)
	histVecs := sortedEntries(r.histVecs)
	r.mu.Unlock()

	for _, e := range counters {
		if err := scalar(e.name, "counter", nil, nil, float64(e.metric.Value())); err != nil {
			return err
		}
	}
	for _, e := range floats {
		if err := scalar(e.name, "counter", nil, nil, e.metric.Value()); err != nil {
			return err
		}
	}
	for _, e := range gauges {
		if err := scalar(e.name, "gauge", nil, nil, e.metric.Value()); err != nil {
			return err
		}
	}
	for _, e := range hists {
		if err := histogram(e.name, nil, nil, e.metric.snapshot()); err != nil {
			return err
		}
	}
	for _, e := range counterVecs {
		for _, c := range e.metric.core.snapshotChildren() {
			if err := scalar(e.name, "counter", e.metric.core.labels, c.values, float64(c.metric.Value())); err != nil {
				return err
			}
		}
	}
	for _, e := range gaugeVecs {
		for _, c := range e.metric.core.snapshotChildren() {
			if err := scalar(e.name, "gauge", e.metric.core.labels, c.values, c.metric.Value()); err != nil {
				return err
			}
		}
	}
	for _, e := range histVecs {
		for _, c := range e.metric.core.snapshotChildren() {
			if err := histogram(e.name, e.metric.core.labels, c.values, c.metric.snapshot()); err != nil {
				return err
			}
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.typ)
		for _, line := range f.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// regEntry pairs one registry name with its metric for deterministic
// iteration.
type regEntry[M any] struct {
	name   string
	metric M
}

// sortedEntries snapshots a registry map into name-sorted entries.
// Caller holds the registry lock.
func sortedEntries[M any](m map[string]M) []regEntry[M] {
	out := make([]regEntry[M], 0, len(m))
	for n, v := range m {
		out = append(out, regEntry[M]{name: n, metric: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// PromContentType is the Content-Type of text exposition format 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromHandler serves the default registry in Prometheus text format,
// refreshing the runtime gauges (goroutines, heap, GC) on every scrape
// so they are always current without a background sampler.
func PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		SampleRuntime()
		w.Header().Set("Content-Type", PromContentType)
		if err := Default().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
