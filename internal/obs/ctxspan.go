package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID identifies one request-scoped trace, W3C Trace Context shaped
// (16 bytes, all-zero means "no trace").
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, all-zero means
// "no span").
type SpanID [8]byte

// IsZero reports the absent-trace sentinel.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits, the traceparent
// spelling.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the absent-span sentinel.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses the 32-hex-digit spelling of a trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace ID %q is not 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("obs: trace ID %q: %w", s, err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("obs: trace ID %q is all zeros", s)
	}
	return t, nil
}

// idEntropy is the process-unique high half of generated trace IDs,
// drawn from the OS entropy pool once at startup; idCounter provides the
// low halves and every span ID, so ID generation is a single atomic add.
var (
	idEntropy uint64
	idCounter atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idEntropy = binary.BigEndian.Uint64(b[:])
	} else {
		idEntropy = uint64(time.Now().UnixNano())
	}
	if idEntropy == 0 {
		idEntropy = 1
	}
}

// NewTraceID returns a process-unique, non-zero trace ID: 8 bytes of
// process entropy followed by a sequence number.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], idEntropy)
	binary.BigEndian.PutUint64(t[8:], idCounter.Add(1))
	return t
}

// newSpanID returns a process-unique, non-zero span ID.
func newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], idCounter.Add(1))
	return s
}

// FormatTraceparent renders a W3C Trace Context traceparent header
// (version 00): 00-<trace-id>-<parent-id>-<flags>.
func FormatTraceparent(t TraceID, s SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + t.String() + "-" + s.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header into its trace ID,
// parent span ID and sampled flag. Unknown future versions are accepted
// as long as the version-00 prefix fields parse (per the spec); the
// forbidden version ff, malformed fields and all-zero IDs are errors.
func ParseTraceparent(h string) (TraceID, SpanID, bool, error) {
	var (
		t TraceID
		s SpanID
	)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false, fmt.Errorf("obs: malformed traceparent %q", h)
	}
	if h[:2] == "ff" {
		return t, s, false, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, false, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, false, fmt.Errorf("obs: traceparent parent-id: %w", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return t, s, false, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	if t.IsZero() || s.IsZero() {
		return t, s, false, fmt.Errorf("obs: traceparent %q has all-zero IDs", h)
	}
	return t, s, flags[0]&0x01 != 0, nil
}

// spanCtxKey keys the current span in a context.
type spanCtxKey struct{}

// SpanRef is the lightweight handle to a live span that travels in a
// context: enough identity to parent children and record events, without
// carrying the span's mutable attribute state across goroutines.
type SpanRef struct {
	sink  spanSink
	trace TraceID
	id    SpanID
}

// Valid reports whether the ref points at a recording span.
func (r SpanRef) Valid() bool { return r.sink != nil }

// TraceID returns the referenced span's trace.
func (r SpanRef) TraceID() TraceID { return r.trace }

// SpanID returns the referenced span's ID.
func (r SpanRef) SpanID() SpanID { return r.id }

// Event records an instant event parented on the referenced span.
func (r SpanRef) Event(cat, name string) {
	if r.sink == nil {
		return
	}
	r.sink.recordSpan(SpanEvent{
		Cat:     cat,
		Name:    name,
		StartNS: r.sink.nowNS(),
		Trace:   r.trace,
		ID:      newSpanID(),
		Parent:  r.id,
		Kind:    KindInstant,
	})
}

// ContextWithSpan returns ctx carrying s as the current span, so
// StartSpanCtx and EventCtx downstream attach to it. An inert span
// returns ctx unchanged (and allocates nothing).
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.sink == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, SpanRef{sink: s.sink, trace: s.trace, id: s.id})
}

// ContextWithSpanRef transplants a span ref onto ctx. The serving layer
// uses it to carry a request's span onto the detached lifecycle context
// a coalesced computation runs on.
func ContextWithSpanRef(ctx context.Context, r SpanRef) context.Context {
	if r.sink == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, r)
}

// SpanRefFromContext returns the current span's ref, if any.
func SpanRefFromContext(ctx context.Context) (SpanRef, bool) {
	r, ok := ctx.Value(spanCtxKey{}).(SpanRef)
	return r, ok
}

// TraceIDFromContext returns the current request's trace ID, if the
// context carries a span that belongs to one.
func TraceIDFromContext(ctx context.Context) (TraceID, bool) {
	r, ok := SpanRefFromContext(ctx)
	if !ok || r.trace.IsZero() {
		return TraceID{}, false
	}
	return r.trace, true
}

// StartSpanCtx opens a child span of the context's current span and
// returns it together with a context carrying the child (so further
// StartSpanCtx calls nest). Without a span in ctx it falls back to the
// process tracer; with tracing fully off it returns an inert span and
// ctx unchanged, allocating nothing.
func StartSpanCtx(ctx context.Context, cat, name string) (Span, context.Context) {
	if ref, ok := SpanRefFromContext(ctx); ok && ref.sink != nil {
		sp := Span{
			sink:   ref.sink,
			cat:    cat,
			name:   name,
			start:  ref.sink.nowNS(),
			trace:  ref.trace,
			id:     newSpanID(),
			parent: ref.id,
		}
		return sp, context.WithValue(ctx, spanCtxKey{}, SpanRef{sink: sp.sink, trace: sp.trace, id: sp.id})
	}
	t := T()
	if t == nil {
		return Span{}, ctx
	}
	sp := t.Start(cat, name)
	return sp, ContextWithSpan(ctx, sp)
}

// EventCtx records an instant event on the context's current span, if
// any. Free (no allocation) when no span is present.
func EventCtx(ctx context.Context, cat, name string) {
	if ref, ok := SpanRefFromContext(ctx); ok {
		ref.Event(cat, name)
	}
}
