package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a structured logger writing to w. format selects the
// handler: "text" (or "") for logfmt-style output, "json" for one JSON
// object per line. verbose lowers the level from Info to Debug.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
