package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal parser for Prometheus text exposition format 0.0.4 — enough
// to round-trip WritePrometheus output in tests and to validate scrape
// bodies without any external dependency.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily groups the samples sharing one metric family. For
// histograms the family is the base name and Samples holds the
// _bucket/_sum/_count series.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// histogramSeriesBase maps a histogram series name (x_bucket, x_sum,
// x_count) back onto its family base name, or returns name unchanged.
func histogramSeriesBase(name string, families map[string]*PromFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// parsePromLabels parses the {name="value",...} block starting at s[0] ==
// '{'. It returns the labels and the offset just past the closing '}'.
func parsePromLabels(s string) (map[string]string, int, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, 0, fmt.Errorf("obs: label block missing '=' in %q", s)
		}
		name := strings.TrimSpace(s[start:i])
		if name == "" {
			return nil, 0, fmt.Errorf("obs: empty label name in %q", s)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return nil, 0, fmt.Errorf("obs: label value missing opening quote in %q", s)
		}
		i++
		var sb strings.Builder
		for {
			if i >= len(s) {
				return nil, 0, fmt.Errorf("obs: unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, 0, fmt.Errorf("obs: dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				case 'n':
					sb.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("obs: unknown escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			sb.WriteByte(c)
			i++
		}
		labels[name] = sb.String()
	}
}

// ParsePrometheus parses text exposition format 0.0.4 into families
// keyed by family name. Histogram _bucket/_sum/_count series fold into
// the base family declared by their # TYPE line. # HELP lines and
// trailing timestamps are accepted and ignored.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
				}
				if f, ok := families[name]; ok && f.Type != typ {
					return nil, fmt.Errorf("obs: line %d: family %s re-declared as %s (was %s)", lineNo, name, typ, f.Type)
				}
				if _, ok := families[name]; !ok {
					families[name] = &PromFamily{Name: name, Type: typ}
				}
			}
			continue // HELP and other comments
		}

		// Sample line: name[{labels}] value [timestamp]
		i := 0
		for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		name := line[:i]
		if name == "" {
			return nil, fmt.Errorf("obs: line %d: missing metric name", lineNo)
		}
		var labels map[string]string
		if i < len(line) && line[i] == '{' {
			var (
				n   int
				err error
			)
			labels, n, err = parsePromLabels(line[i:])
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			i += n
		}
		rest := strings.Fields(line[i:])
		if len(rest) < 1 || len(rest) > 2 {
			return nil, fmt.Errorf("obs: line %d: want value [timestamp], got %q", lineNo, line[i:])
		}
		v, err := parsePromValue(rest[0])
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if len(rest) == 2 {
			if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad timestamp %q", lineNo, rest[1])
			}
		}
		fam := histogramSeriesBase(name, families)
		f, ok := families[fam]
		if !ok {
			f = &PromFamily{Name: fam, Type: "untyped"}
			families[fam] = f
		}
		f.Samples = append(f.Samples, PromSample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// parsePromValue parses a sample value, accepting the +Inf/-Inf/NaN
// spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad sample value %q", s)
	}
	return v, nil
}

// labelsWithout copies labels minus the given key, as a sorted flat key
// for grouping histogram series.
func labelsWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// ValidatePrometheus checks parsed families for the invariants scrapers
// rely on: finite sample values (no NaN), non-negative counters, and for
// every histogram child: le-ascending cumulative non-decreasing buckets,
// a +Inf bucket present and equal to _count, and a _sum series.
func ValidatePrometheus(families map[string]*PromFamily) error {
	for name, f := range families {
		for _, s := range f.Samples {
			if math.IsNaN(s.Value) {
				return fmt.Errorf("obs: %s: NaN sample value", s.Name)
			}
			if f.Type == "counter" && s.Value < 0 {
				return fmt.Errorf("obs: %s: negative counter value %v", s.Name, s.Value)
			}
		}
		if f.Type != "histogram" {
			continue
		}
		type histChild struct {
			buckets []PromSample
			sum     *PromSample
			count   *PromSample
		}
		children := map[string]*histChild{}
		child := func(key string) *histChild {
			c, ok := children[key]
			if !ok {
				c = &histChild{}
				children[key] = c
			}
			return c
		}
		for i := range f.Samples {
			s := &f.Samples[i]
			key := labelsWithout(s.Labels, "le")
			switch {
			case s.Name == name+"_bucket":
				child(key).buckets = append(child(key).buckets, *s)
			case s.Name == name+"_sum":
				child(key).sum = s
			case s.Name == name+"_count":
				child(key).count = s
			default:
				return fmt.Errorf("obs: histogram %s has stray series %s", name, s.Name)
			}
		}
		for key, c := range children {
			if len(c.buckets) == 0 {
				return fmt.Errorf("obs: histogram %s{%s}: no buckets", name, key)
			}
			if c.sum == nil || c.count == nil {
				return fmt.Errorf("obs: histogram %s{%s}: missing _sum or _count", name, key)
			}
			type bp struct {
				le  float64
				n   float64
				inf bool
			}
			bps := make([]bp, 0, len(c.buckets))
			for _, b := range c.buckets {
				le, ok := b.Labels["le"]
				if !ok {
					return fmt.Errorf("obs: histogram %s{%s}: bucket without le label", name, key)
				}
				lv, err := parsePromValue(le)
				if err != nil {
					return fmt.Errorf("obs: histogram %s{%s}: bad le %q", name, key, le)
				}
				bps = append(bps, bp{le: lv, n: b.Value, inf: math.IsInf(lv, 1)})
			}
			sort.Slice(bps, func(i, j int) bool { return bps[i].le < bps[j].le })
			var prev float64
			hasInf := false
			for i, b := range bps {
				if i > 0 && b.le == bps[i-1].le {
					return fmt.Errorf("obs: histogram %s{%s}: duplicate le bound %v", name, key, b.le)
				}
				if b.n < prev {
					return fmt.Errorf("obs: histogram %s{%s}: bucket counts not cumulative at le=%v", name, key, b.le)
				}
				prev = b.n
				if b.inf {
					hasInf = true
					if b.n != c.count.Value {
						return fmt.Errorf("obs: histogram %s{%s}: +Inf bucket %v != _count %v", name, key, b.n, c.count.Value)
					}
				}
			}
			if !hasInf {
				return fmt.Errorf("obs: histogram %s{%s}: missing +Inf bucket", name, key)
			}
		}
	}
	return nil
}
