package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The vec types add a small-cardinality label dimension (endpoint,
// status class, cache outcome) over the lock-cheap scalar metrics.
// Children are kept in a copy-on-write map behind an atomic pointer:
// looking up an existing child takes no lock, and the returned handle is
// the same atomic Counter/Gauge/Histogram as everywhere else, so hot
// paths resolve their label combination once (at route registration, or
// per status class into a fixed array) and then pay only the scalar's
// atomic add per update. Creating a new child takes a mutex and rebuilds
// the map — a bounded, startup-time cost because label sets are fixed
// and tiny by design.

// labelKey builds the child map key. Single-label vecs use the value
// directly so even an unresolved With on the hot path stays
// allocation-free once the child exists.
func labelKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

// vecChild pairs one child's label values with its metric.
type vecChild[M any] struct {
	values []string
	metric M
}

// vecCore is the shared copy-on-write machinery of every vec type.
type vecCore[M any] struct {
	name   string
	labels []string

	mu       sync.Mutex
	children atomic.Pointer[map[string]*vecChild[M]]
}

func newVecCore[M any](name string, labels []string) *vecCore[M] {
	if len(labels) == 0 {
		panic("obs: a labelled metric needs at least one label name")
	}
	return &vecCore[M]{name: name, labels: labels}
}

// with returns the child for values, creating it with make on first use.
// The hit path is one atomic load and a map lookup.
func (v *vecCore[M]) with(values []string, make func() M) M {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(values)
	if m := v.children.Load(); m != nil {
		if c, ok := (*m)[key]; ok {
			return c.metric
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.children.Load()
	if old != nil {
		if c, ok := (*old)[key]; ok {
			return c.metric
		}
	}
	next := map[string]*vecChild[M]{}
	if old != nil {
		for k, c := range *old {
			next[k] = c
		}
	}
	child := &vecChild[M]{values: append([]string(nil), values...), metric: make()}
	next[key] = child
	v.children.Store(&next)
	return child.metric
}

// snapshotChildren returns the children sorted by key for deterministic
// exposition.
func (v *vecCore[M]) snapshotChildren() []*vecChild[M] {
	m := v.children.Load()
	if m == nil {
		return nil
	}
	keys := make([]string, 0, len(*m))
	for k := range *m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*vecChild[M], 0, len(keys))
	for _, k := range keys {
		out = append(out, (*m)[k])
	}
	return out
}

// CounterVec is a family of Counters distinguished by label values.
type CounterVec struct {
	core *vecCore[*Counter]
}

func newCounterVec(name string, labels []string) *CounterVec {
	return &CounterVec{core: newVecCore[*Counter](name, labels)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once and keep the handle on hot paths; the handle's
// Inc/Add are the usual single atomic adds.
func (v *CounterVec) With(values ...string) *Counter {
	return v.core.with(values, func() *Counter { return &Counter{} })
}

// GaugeVec is a family of Gauges distinguished by label values.
type GaugeVec struct {
	core *vecCore[*Gauge]
}

func newGaugeVec(name string, labels []string) *GaugeVec {
	return &GaugeVec{core: newVecCore[*Gauge](name, labels)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.core.with(values, func() *Gauge { return &Gauge{} })
}

// HistogramVec is a family of fixed-bucket Histograms sharing one bounds
// slice, distinguished by label values.
type HistogramVec struct {
	core   *vecCore[*Histogram]
	bounds []float64
}

func newHistogramVec(name string, bounds []float64, labels []string) *HistogramVec {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	// Validate the bounds once, eagerly, rather than on first With.
	NewHistogramBuckets(b)
	return &HistogramVec{core: newVecCore[*Histogram](name, labels), bounds: b}
}

// With returns the histogram for the given label values, creating it on
// first use with the vec's shared bounds.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.core.with(values, func() *Histogram { return NewHistogramBuckets(v.bounds) })
}

// flatName spells one child as name{l1="v1",l2="v2"} — the key used in
// JSON snapshots so labelled metrics ride along in /debug/metrics,
// expvar and manifests without schema changes.
func flatName(name string, labels, values []string) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}
