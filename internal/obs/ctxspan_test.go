package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestTraceIDParseRoundTrip(t *testing.T) {
	id := NewTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", id.String(), err)
	}
	if got != id {
		t.Fatalf("round trip: got %s want %s", got, id)
	}
	for _, bad := range []string{
		"",
		"abc",
		"00000000000000000000000000000000",   // all zero
		"zz102030405060708090a0b0c0d0e0f0",   // not hex
		"0102030405060708090a0b0c0d0e0f0102", // too long
		strings.Repeat("0", 31) + "1" + "0",  // 33 chars
	} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q): want error", bad)
		}
	}
}

func TestNewTraceIDsAreUniqueAndNonZero(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned the zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	sp := newSpanID()
	h := FormatTraceparent(id, sp, true)
	gotT, gotS, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if gotT != id || gotS != sp || !sampled {
		t.Fatalf("round trip mismatch: %s %s %v", gotT, gotS, sampled)
	}
	if _, _, sampled, err = ParseTraceparent(FormatTraceparent(id, sp, false)); err != nil || sampled {
		t.Fatalf("unsampled round trip: sampled=%v err=%v", sampled, err)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	id, sp := NewTraceID(), newSpanID()
	for _, bad := range []string{
		"",
		"00",
		"00-" + id.String(),                                             // missing fields
		"ff-" + id.String() + "-" + sp.String() + "-01",                 // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + sp.String() + "-01",     // zero trace
		"00-" + id.String() + "-" + strings.Repeat("0", 16) + "-01",     // zero parent
		"00-" + strings.Repeat("z", 32) + "-" + sp.String() + "-01",     // non-hex trace
		"00x" + id.String() + "-" + sp.String() + "-01",                 // wrong separator
	} {
		if _, _, _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q): want error", bad)
		}
	}
}

func TestStartSpanCtxParentsUnderRequestSpan(t *testing.T) {
	buf := newTraceBuffer(NewTraceID(), 16)
	root := buf.Root("request", "coverage", SpanID{})
	ctx := ContextWithSpan(context.Background(), root)

	child, cctx := StartSpanCtx(ctx, "server", "compute")
	if !child.Active() {
		t.Fatal("child span inactive inside a traced context")
	}
	if child.TraceID() != buf.ID() {
		t.Fatalf("child trace %s, want %s", child.TraceID(), buf.ID())
	}
	grand, _ := StartSpanCtx(cctx, "chunk", "c0")
	EventCtx(cctx, "cache", "miss")
	grand.End()
	child.End()
	root.End()

	evs := buf.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]SpanEvent{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	if byName["compute"].Parent != root.ID() {
		t.Error("compute span not parented on the root")
	}
	if byName["c0"].Parent != byName["compute"].ID {
		t.Error("grandchild not parented on the child")
	}
	if ev := byName["miss"]; ev.Kind != KindInstant || ev.Parent != byName["compute"].ID {
		t.Errorf("cache event: kind=%v parent=%s, want instant under compute", ev.Kind, ev.Parent)
	}
	for _, ev := range evs {
		if ev.Trace != buf.ID() {
			t.Errorf("event %s escaped the trace: %s", ev.Name, ev.Trace)
		}
	}
}

func TestStartSpanCtxFallsBackToProcessTracer(t *testing.T) {
	tr := NewTracer(16)
	SetTracer(tr)
	defer SetTracer(nil)
	sp, ctx := StartSpanCtx(context.Background(), "phase", "study")
	if !sp.Active() {
		t.Fatal("span inactive with a process tracer installed")
	}
	child, _ := StartSpanCtx(ctx, "chunk", "c1")
	child.End()
	sp.End()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Parent != sp.ID() {
		t.Error("fallback child not parented via the returned context")
	}
}

func TestStartSpanCtxDisabledIsInert(t *testing.T) {
	SetTracer(nil)
	ctx := context.Background()
	sp, out := StartSpanCtx(ctx, "a", "b")
	if sp.Active() {
		t.Fatal("span active with tracing fully off")
	}
	if out != ctx {
		t.Fatal("disabled StartSpanCtx must return ctx unchanged")
	}
	sp.End() // must not panic
	EventCtx(ctx, "a", "b")
}

func TestTraceBufferCapsSpans(t *testing.T) {
	buf := newTraceBuffer(NewTraceID(), 3)
	root := buf.Root("request", "r", SpanID{})
	for i := 0; i < 5; i++ {
		root.Event("e")
	}
	if got := len(buf.Events()); got != 3 {
		t.Fatalf("buffer kept %d events, want 3", got)
	}
	if buf.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", buf.Dropped())
	}
}

func TestTraceStoreFIFOEviction(t *testing.T) {
	s := NewTraceStore(2, 8)
	b1 := s.Start(TraceID{})
	b2 := s.Start(TraceID{})
	if s.Len() != 2 {
		t.Fatalf("len %d, want 2", s.Len())
	}
	// Repeat ID returns the same buffer, no eviction.
	if again := s.Start(b2.ID()); again != b2 {
		t.Fatal("repeated trace ID minted a new buffer")
	}
	b3 := s.Start(TraceID{})
	if _, ok := s.Get(b1.ID()); ok {
		t.Fatal("oldest trace not evicted")
	}
	for _, b := range []*TraceBuffer{b2, b3} {
		if _, ok := s.Get(b.ID()); !ok {
			t.Fatalf("trace %s missing", b.ID())
		}
	}
}

func TestTraceBufferChromeTraceValidates(t *testing.T) {
	buf := newTraceBuffer(NewTraceID(), 16)
	root := buf.Root("request", "coverage", SpanID{})
	root.Event("cache_miss")
	child, _ := StartSpanCtx(ContextWithSpan(context.Background(), root), "chunk", "c0")
	child.End()
	root.End()
	var out bytes.Buffer
	if err := buf.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("chrome trace with instants fails validation: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `"ph": "i"`) {
		t.Error("instant event not rendered as ph:i")
	}
}
