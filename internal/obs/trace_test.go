package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpanRecordsEvent(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("experiment", "table1")
	sp.Attr("seed", "2015")
	sp.Attr("samples", "2000")
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Cat != "experiment" || ev.Name != "table1" {
		t.Errorf("event = %q/%q, want experiment/table1", ev.Cat, ev.Name)
	}
	if ev.DurNS < 0 || ev.StartNS < 0 {
		t.Errorf("negative timing: start %d dur %d", ev.StartNS, ev.DurNS)
	}
	if ev.NAttrs != 2 || ev.Attrs[0] != (Attr{"seed", "2015"}) || ev.Attrs[1] != (Attr{"samples", "2000"}) {
		t.Errorf("attrs = %v (%d), want seed/samples", ev.Attrs, ev.NAttrs)
	}
}

func TestSpanAttrOverflowDropped(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("c", "n")
	for i := 0; i < maxSpanAttrs+3; i++ {
		sp.Attr("k", "v")
	}
	sp.End()
	if got := tr.Events()[0].NAttrs; got != maxSpanAttrs {
		t.Errorf("NAttrs = %d, want %d", got, maxSpanAttrs)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("c", "n")
	sp.Attr("k", "v")
	sp.End() // must not panic
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer Events() = %v, want nil", evs)
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer Dropped() != 0")
	}
}

// TestDisabledSpanZeroAllocs is the zero-overhead contract: with no
// tracer installed, the full Start/Attr/End sequence through obs.T()
// allocates nothing.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	SetTracer(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := T().Start("experiment", "bench")
		sp.Attr("seed", "2015")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		sp := tr.Start("c", n)
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, want := range []string{"c", "d", "e", "f"} {
		if evs[i].Name != want {
			t.Errorf("event %d = %q, want %q (oldest-first order)", i, evs[i].Name, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
}

// fixedTracer builds a tracer with hand-written events so timing-
// dependent output (the Chrome trace, phase aggregation) is exactly
// reproducible.
func fixedTracer() *Tracer {
	tr := NewTracer(16)
	ms := func(v int64) int64 { return v * int64(time.Millisecond) }
	events := []SpanEvent{
		{Cat: "experiment", Name: "table1", StartNS: 0, DurNS: ms(5),
			Attrs: [maxSpanAttrs]Attr{{Key: "seed", Value: "2015"}}, NAttrs: 1},
		{Cat: "experiment", Name: "table2", StartNS: ms(1), DurNS: ms(2)},
		{Cat: "calibration", Name: "lcsc", StartNS: ms(6), DurNS: ms(1)},
		{Cat: "calibration", Name: "lcsc", StartNS: ms(8), DurNS: ms(3)},
	}
	for _, ev := range events {
		tr.record(ev)
	}
	return tr
}

// TestChromeTraceGolden locks the emitted Chrome-trace JSON down to the
// byte. Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden trace must also satisfy the validator.
	if err := ValidateChromeTrace(bytes.NewReader(want)); err != nil {
		t.Errorf("golden trace fails validation: %v", err)
	}
}

// TestChromeTraceLanes: overlapping spans land on distinct tids so
// Perfetto renders them side by side instead of falsely nested.
func TestChromeTraceLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"tid": 2`) {
		t.Errorf("overlapping spans share one lane:\n%s", out)
	}
}

func TestValidateChromeTraceErrors(t *testing.T) {
	cases := map[string]string{
		"not json":     "{",
		"no events":    `{"traceEvents":[]}`,
		"no name":      `{"traceEvents":[{"ph":"X","pid":1,"tid":1}]}`,
		"wrong phase":  `{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":1}]}`,
		"negative dur": `{"traceEvents":[{"name":"x","ph":"X","dur":-1,"pid":1,"tid":1}]}`,
		"zero pid":     `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":1}]}`,
	}
	for name, in := range cases {
		if err := ValidateChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestPhaseTimings(t *testing.T) {
	pts := fixedTracer().PhaseTimings()
	if len(pts) != 3 {
		t.Fatalf("got %d phase timings, want 3: %+v", len(pts), pts)
	}
	// Sorted by (cat, name): calibration/lcsc, experiment/table1, experiment/table2.
	if pts[0].Cat != "calibration" || pts[0].Name != "lcsc" || pts[0].Count != 2 ||
		pts[0].TotalMS != 4 || pts[0].MaxMS != 3 {
		t.Errorf("calibration aggregate wrong: %+v", pts[0])
	}
	if pts[1].Name != "table1" || pts[1].TotalMS != 5 {
		t.Errorf("table1 aggregate wrong: %+v", pts[1])
	}
	if pts[2].Name != "table2" || pts[2].Count != 1 {
		t.Errorf("table2 aggregate wrong: %+v", pts[2])
	}
}

// TestValidateTraceFile validates an externally produced trace file;
// the make trace target runs cmd/repro with -trace-out and points this
// test at the result via NODEVAR_TRACE_FILE.
func TestValidateTraceFile(t *testing.T) {
	path := os.Getenv("NODEVAR_TRACE_FILE")
	if path == "" {
		t.Skip("NODEVAR_TRACE_FILE not set (this test backs the make trace target)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ValidateChromeTrace(f); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
