package obs

import (
	"math"
	"testing"
)

func TestSLOBudgetStartsFullAndBurns(t *testing.T) {
	s := NewSLO("test-full", 0.1, 0.9) // 10% error budget
	if got := s.BudgetRemaining(); got != 1 {
		t.Fatalf("no-traffic budget %v, want 1", got)
	}
	// 100 requests, 5 bad: half the 10% budget burned.
	for i := 0; i < 95; i++ {
		s.Observe(0.01, true)
	}
	for i := 0; i < 5; i++ {
		s.Observe(0.01, false)
	}
	if got := s.BudgetRemaining(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("budget %v, want 0.5", got)
	}
	if s.Exhausted(10) {
		t.Fatal("budget exhausted at half burn")
	}
}

func TestSLOLatencyOverrunsBurnBudget(t *testing.T) {
	s := NewSLO("test-lat", 0.1, 0.5)
	s.Observe(0.2, true) // success but slow: still a violation
	if _, bad := s.Counts(); bad != 1 {
		t.Fatalf("slow success recorded %d violations, want 1", bad)
	}
	s.Observe(0.05, true)
	if _, bad := s.Counts(); bad != 1 {
		t.Fatalf("fast success recorded extra violation: %d", bad)
	}
}

func TestSLOExhaustionNeedsMinRequests(t *testing.T) {
	s := NewSLO("test-min", 0.1, 0.99)
	s.Observe(0.01, false) // 1/1 bad: budget deeply negative
	if s.BudgetRemaining() > 0 {
		t.Fatalf("budget %v, want <= 0", s.BudgetRemaining())
	}
	if s.Exhausted(100) {
		t.Fatal("exhausted before the observation floor")
	}
	for i := 0; i < 99; i++ {
		s.Observe(0.01, false)
	}
	if !s.Exhausted(100) {
		t.Fatal("not exhausted with 100% failures past the floor")
	}
}

func TestSLOBudgetClampsAtMinusOne(t *testing.T) {
	s := NewSLO("test-clamp", 0.1, 0.99)
	for i := 0; i < 1000; i++ {
		s.Observe(1, false)
	}
	if got := s.BudgetRemaining(); got != -1 {
		t.Fatalf("budget %v, want clamp at -1", got)
	}
}

func TestSLORecoversWithGoodTraffic(t *testing.T) {
	s := NewSLO("test-recover", 0.1, 0.5) // generous 50% budget
	s.Observe(0.01, false)
	if s.BudgetRemaining() > 0 {
		t.Fatal("expected burned budget")
	}
	for i := 0; i < 9; i++ {
		s.Observe(0.01, true)
	}
	// 1 bad of 10 allowed-5: budget mostly back.
	if got := s.BudgetRemaining(); got <= 0 {
		t.Fatalf("budget %v after recovery, want > 0", got)
	}
}

func TestSLODefaultsBadObjective(t *testing.T) {
	s := NewSLO("test-default", 0.1, 1.5)
	if s.Objective() != 0.99 {
		t.Fatalf("objective %v, want default 0.99", s.Objective())
	}
}
