package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// ManifestSchema identifies the manifest layout; bump on breaking
// changes. v3 added the run status plus the optional "exec" (timeout,
// checkpoint, signal) and "watchdog" (per-phase deadline overruns)
// sections; v2 added the optional "faults" section describing injected
// faults and the resulting data completeness. Both earlier schemas are
// still readable via ReadManifest.
const (
	ManifestSchema   = "nodevar/run-manifest/v3"
	ManifestSchemaV2 = "nodevar/run-manifest/v2"
	ManifestSchemaV1 = "nodevar/run-manifest/v1"
)

// Run statuses recorded in a v3 manifest. A manifest is written on
// every exit path — the status says which one the run took.
const (
	// StatusOK is a run that completed normally.
	StatusOK = "ok"
	// StatusInterrupted is a run canceled by SIGINT/SIGTERM; its partial
	// artifacts (checkpoint, metrics up to the signal) are valid.
	StatusInterrupted = "interrupted"
	// StatusTimeout is a run canceled by its own -timeout deadline.
	StatusTimeout = "timeout"
	// StatusFailed is a run that exited with an error.
	StatusFailed = "failed"
)

// ExecSection records the execution-control envelope of a run: the
// configured timeout, the checkpoint file in play, whether the run
// resumed from it, and the signal that ended the run early (if any).
// Written only when at least one of those is in effect.
type ExecSection struct {
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	Checkpoint string  `json:"checkpoint,omitempty"`
	Resumed    bool    `json:"resumed,omitempty"`
	Signal     string  `json:"signal,omitempty"`
}

// FaultsSection records a run's fault-injection schedule and what it
// cost: the seed and schedule for byte-identical replay, the observed
// data completeness, and the per-class injection counts. It is written
// only for degraded runs (omitted entirely when no faults were
// injected, keeping fault-free manifests identical to v1 apart from the
// schema string).
type FaultsSection struct {
	Seed     uint64 `json:"seed"`
	Schedule string `json:"schedule"`
	// Completeness is observed data over expected data, in (0, 1].
	Completeness float64 `json:"completeness"`
	Degraded     bool    `json:"degraded"`

	DropWindows    int `json:"drop_windows,omitempty"`
	DroppedSamples int `json:"dropped_samples,omitempty"`
	StuckWindows   int `json:"stuck_windows,omitempty"`
	GlitchNaN      int `json:"glitch_nan,omitempty"`
	GlitchSpike    int `json:"glitch_spike,omitempty"`
	MeterFailures  int `json:"meter_failures,omitempty"`
	MeterRetries   int `json:"meter_retries,omitempty"`
	MeterGiveUps   int `json:"meter_giveups,omitempty"`
	NodesDropped   int `json:"nodes_dropped,omitempty"`
}

// Manifest ties one command invocation to everything needed to
// reproduce and audit it: the exact configuration, per-phase wall
// times, and the final metric snapshot. Each figure or table recorded
// in EXPERIMENTS.md references the manifest of the run that produced
// it.
type Manifest struct {
	Schema    string   `json:"schema"`
	Command   string   `json:"command"`
	Args      []string `json:"args"`
	Version   string   `json:"version"`
	GoVersion string   `json:"go_version"`

	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	DurationSec float64   `json:"duration_sec"`

	// Config is the command's effective configuration (seed, resolution,
	// replicate counts, ...).
	Config map[string]any `json:"config"`
	// Phases are the tracer's aggregated span timings (empty when
	// tracing was disabled).
	Phases []PhaseTiming `json:"phases"`
	// TraceDropped counts ring-buffer overwrites; nonzero means Phases
	// undercounts early spans.
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// Metrics is the final snapshot of the default registry.
	Metrics Snapshot `json:"metrics"`
	// Faults describes injected faults and data completeness (v2; nil
	// for fault-free runs and all v1 manifests).
	Faults *FaultsSection `json:"faults,omitempty"`

	// Status is how the run ended: one of the Status* constants (v3;
	// empty in older manifests).
	Status string `json:"status,omitempty"`
	// Exec is the execution-control envelope (v3; nil when no timeout,
	// checkpoint or signal was involved).
	Exec *ExecSection `json:"exec,omitempty"`
	// Watchdog reports phases that overran the configured per-phase
	// deadline (v3; nil when no deadline was set).
	Watchdog *WatchdogSection `json:"watchdog,omitempty"`
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses a manifest written by this or an earlier version
// of the tool. It accepts the current v3 schema, the v2 schema (no
// status/exec/watchdog) and the v1 schema (additionally no faults
// section); any other schema string — or an older schema carrying
// newer-schema sections — is an error.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest: %w", err)
	}
	switch m.Schema {
	case ManifestSchema:
		if m.Status != "" {
			switch m.Status {
			case StatusOK, StatusInterrupted, StatusTimeout, StatusFailed:
			default:
				return nil, fmt.Errorf("obs: unknown manifest status %q", m.Status)
			}
		}
	case ManifestSchemaV2:
		if m.Status != "" || m.Exec != nil || m.Watchdog != nil {
			return nil, fmt.Errorf("obs: %s manifest carries v3 sections", ManifestSchemaV2)
		}
	case ManifestSchemaV1:
		if m.Status != "" || m.Exec != nil || m.Watchdog != nil {
			return nil, fmt.Errorf("obs: %s manifest carries v3 sections", ManifestSchemaV1)
		}
		if m.Faults != nil {
			return nil, fmt.Errorf("obs: %s manifest carries a v2 faults section", ManifestSchemaV1)
		}
	default:
		return nil, fmt.Errorf("obs: unsupported manifest schema %q (want %s, %s or %s)",
			m.Schema, ManifestSchema, ManifestSchemaV2, ManifestSchemaV1)
	}
	return &m, nil
}

var (
	versionOnce sync.Once
	versionStr  string
)

// Version identifies the built source: the module build info's VCS
// revision when the binary was built with VCS stamping, otherwise the
// output of `git describe --always --dirty`, otherwise "unknown".
func Version() string {
	versionOnce.Do(func() {
		versionStr = detectVersion()
	})
	return versionStr
}

func detectVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if modified == "true" {
				rev += "-dirty"
			}
			return rev
		}
	}
	// go test and -buildvcs=off binaries carry no VCS stamp; fall back
	// to asking git directly.
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err == nil {
		if v := strings.TrimSpace(string(out)); v != "" {
			return v
		}
	}
	return "unknown"
}

// NewManifest assembles a manifest for a finished run. tracer may be
// nil; metrics come from the default registry.
func NewManifest(command string, args []string, config map[string]any, start time.Time, tracer *Tracer) *Manifest {
	end := time.Now()
	m := &Manifest{
		Schema:      ManifestSchema,
		Command:     command,
		Args:        args,
		Version:     Version(),
		GoVersion:   runtime.Version(),
		Start:       start,
		End:         end,
		DurationSec: end.Sub(start).Seconds(),
		Config:      config,
		Metrics:     Default().Snapshot(),
		Status:      StatusOK,
	}
	if tracer != nil {
		m.Phases = tracer.PhaseTimings()
		m.TraceDropped = tracer.Dropped()
	}
	return m
}
