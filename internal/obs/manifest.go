package obs

import (
	"encoding/json"
	"io"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// ManifestSchema identifies the manifest layout; bump on breaking
// changes.
const ManifestSchema = "nodevar/run-manifest/v1"

// Manifest ties one command invocation to everything needed to
// reproduce and audit it: the exact configuration, per-phase wall
// times, and the final metric snapshot. Each figure or table recorded
// in EXPERIMENTS.md references the manifest of the run that produced
// it.
type Manifest struct {
	Schema    string `json:"schema"`
	Command   string `json:"command"`
	Args      []string `json:"args"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`

	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	DurationSec float64   `json:"duration_sec"`

	// Config is the command's effective configuration (seed, resolution,
	// replicate counts, ...).
	Config map[string]any `json:"config"`
	// Phases are the tracer's aggregated span timings (empty when
	// tracing was disabled).
	Phases []PhaseTiming `json:"phases"`
	// TraceDropped counts ring-buffer overwrites; nonzero means Phases
	// undercounts early spans.
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// Metrics is the final snapshot of the default registry.
	Metrics Snapshot `json:"metrics"`
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

var (
	versionOnce sync.Once
	versionStr  string
)

// Version identifies the built source: the module build info's VCS
// revision when the binary was built with VCS stamping, otherwise the
// output of `git describe --always --dirty`, otherwise "unknown".
func Version() string {
	versionOnce.Do(func() {
		versionStr = detectVersion()
	})
	return versionStr
}

func detectVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if modified == "true" {
				rev += "-dirty"
			}
			return rev
		}
	}
	// go test and -buildvcs=off binaries carry no VCS stamp; fall back
	// to asking git directly.
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err == nil {
		if v := strings.TrimSpace(string(out)); v != "" {
			return v
		}
	}
	return "unknown"
}

// NewManifest assembles a manifest for a finished run. tracer may be
// nil; metrics come from the default registry.
func NewManifest(command string, args []string, config map[string]any, start time.Time, tracer *Tracer) *Manifest {
	end := time.Now()
	m := &Manifest{
		Schema:      ManifestSchema,
		Command:     command,
		Args:        args,
		Version:     Version(),
		GoVersion:   runtime.Version(),
		Start:       start,
		End:         end,
		DurationSec: end.Sub(start).Seconds(),
		Config:      config,
		Metrics:     Default().Snapshot(),
	}
	if tracer != nil {
		m.Phases = tracer.PhaseTimings()
		m.TraceDropped = tracer.Dropped()
	}
	return m
}
