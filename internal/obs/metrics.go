package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; increments are single atomic adds.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Hot paths that would otherwise increment per item should
// batch and Add once per chunk.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge via compare-and-swap, so
// concurrent Add/Sub pairs can never publish a stale value the way a
// read-modify-write Set race could.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Sub atomically subtracts delta from the gauge.
func (g *Gauge) Sub(delta float64) { g.Add(-delta) }

// Value returns the last stored value (0 if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FloatCounter accumulates a float64 sum race-safely via compare-and-swap,
// for quantities like busy seconds that are not integer counts.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v to the sum.
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and > Bounds[i-1]); one overflow
// bucket counts v > Bounds[len-1]. Observations are lock-free atomic adds.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    FloatCounter
}

// NewHistogramBuckets builds an unregistered histogram with the given
// strictly increasing upper bounds. It panics on empty or non-increasing
// bounds.
func NewHistogramBuckets(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// element for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot returns a point-in-time copy of the histogram. Each bucket
// read is atomic; the snapshot as a whole is near-simultaneous.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// Quantile estimates the q-quantile (0 < q < 1) from the snapshot's
// buckets by linear interpolation inside the containing bucket (from 0
// below the first bound). Observations in the overflow bucket clamp to
// the last bound. With no observations it returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || !(q > 0 && q < 1) {
		return math.NaN()
	}
	target := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Registry is a named collection of metrics. Lookups take a mutex;
// updates through the returned metric handles are lock-free, so hot
// paths resolve their metrics once (package-level vars) and never touch
// the registry again.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floats      map[string]*FloatCounter
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		floats:      map[string]*FloatCounter{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// defaultRegistry is the process-wide registry behind the package-level
// NewCounter/NewGauge/... constructors and Default().
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.floats[name]
	if !ok {
		f = &FloatCounter{}
		r.floats[name] = f
	}
	return f
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds and return the existing
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogramBuckets(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named labelled counter family, creating it with
// the given label names on first use. Later calls ignore labels and
// return the existing family.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = newCounterVec(name, labels)
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named labelled gauge family, creating it with the
// given label names on first use.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = newGaugeVec(name, labels)
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named labelled histogram family, creating it
// with the given bounds and label names on first use.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = newHistogramVec(name, bounds, labels)
		r.histVecs[name] = v
	}
	return v
}

// NewCounter returns the named counter in the default registry.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge returns the named gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewFloatCounter returns the named float counter in the default registry.
func NewFloatCounter(name string) *FloatCounter { return defaultRegistry.FloatCounter(name) }

// NewHistogram returns the named histogram in the default registry.
func NewHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// NewCounterVec returns the named labelled counter family in the default
// registry.
func NewCounterVec(name string, labels ...string) *CounterVec {
	return defaultRegistry.CounterVec(name, labels...)
}

// NewGaugeVec returns the named labelled gauge family in the default
// registry.
func NewGaugeVec(name string, labels ...string) *GaugeVec {
	return defaultRegistry.GaugeVec(name, labels...)
}

// NewHistogramVec returns the named labelled histogram family in the
// default registry.
func NewHistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	return defaultRegistry.HistogramVec(name, bounds, labels...)
}

// Snapshot is a copy of every metric in a registry. Map keys serialize
// in sorted order (encoding/json sorts map keys), so two snapshots of
// identical metric values marshal to identical bytes regardless of when
// or from which goroutine they were taken.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	FloatCounters map[string]float64           `json:"float_counters"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric. Each
// individual read is atomic; the snapshot as a whole is a consistent
// map of the registry's names to near-simultaneous values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)),
		FloatCounters: make(map[string]float64, len(r.floats)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, f := range r.floats {
		s.FloatCounters[name] = f.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	// Labelled families flatten to name{l1="v1",...} keys, so the JSON
	// snapshot (and therefore /debug/metrics, expvar and manifests)
	// carries them without a schema change.
	for name, v := range r.counterVecs {
		for _, c := range v.core.snapshotChildren() {
			s.Counters[flatName(name, v.core.labels, c.values)] = c.metric.Value()
		}
	}
	for name, v := range r.gaugeVecs {
		for _, c := range v.core.snapshotChildren() {
			s.Gauges[flatName(name, v.core.labels, c.values)] = c.metric.Value()
		}
	}
	for name, v := range r.histVecs {
		for _, c := range v.core.snapshotChildren() {
			s.Histograms[flatName(name, v.core.labels, c.values)] = c.metric.snapshot()
		}
	}
	return s
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.floats)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.floats {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	for n := range r.counterVecs {
		out = append(out, n)
	}
	for n := range r.gaugeVecs {
		out = append(out, n)
	}
	for n := range r.histVecs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// expvarOnce guards the one-shot expvar publication (expvar panics on
// duplicate names).
var expvarOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "nodevar.metrics" (served on /debug/vars alongside pprof).
// Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("nodevar.metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}
