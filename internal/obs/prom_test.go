package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds a registry exercising every exposition shape:
// scalar counter/float counter/gauge, a histogram, and labelled families
// including values that need escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("server.requests").Add(42)
	r.FloatCounter("parallel.worker_busy_seconds").Add(1.5)
	r.Gauge("server.inflight").Set(3)
	h := r.Histogram("server.request_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	cv := r.CounterVec("server.endpoint_requests", "endpoint", "status")
	cv.With("coverage", "2xx").Add(7)
	cv.With("coverage", "5xx").Inc()
	cv.With(`we"ird\la`+"\n"+`bel`, "2xx").Inc()
	hv := r.HistogramVec("server.endpoint_seconds", []float64{0.1, 1}, "endpoint", "status")
	hv.With("rules", "2xx").Observe(0.05)
	hv.With("rules", "2xx").Observe(2)
	r.GaugeVec("slo.error_budget_remaining", "endpoint").With("coverage").Set(0.25)
	return r
}

// TestWritePrometheusGolden locks the exposition bytes: deterministic
// family and sample ordering, sanitized names, escaped label values and
// the full _bucket/_sum/_count histogram triple. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/obs.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus exposition differs from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Two writes must be byte-identical (ordering is deterministic).
	var again bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two writes of identical metric state differ")
	}
}

// TestPrometheusRoundTrip feeds WritePrometheus output through the
// in-repo parser and validator: every family and sample survives, label
// escapes decode back to the original values, and the histogram
// invariants hold.
func TestPrometheusRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if err := ValidatePrometheus(fams); err != nil {
		t.Fatalf("validate: %v\n%s", err, buf.String())
	}

	reqs, ok := fams["server_requests"]
	if !ok || reqs.Type != "counter" {
		t.Fatalf("server_requests missing or mistyped: %+v", reqs)
	}
	if len(reqs.Samples) != 1 || reqs.Samples[0].Value != 42 {
		t.Fatalf("server_requests samples %+v", reqs.Samples)
	}

	ep := fams["server_endpoint_requests"]
	if ep == nil {
		t.Fatal("labelled family missing")
	}
	foundWeird := false
	for _, s := range ep.Samples {
		if s.Labels["endpoint"] == `we"ird\la`+"\n"+`bel` {
			foundWeird = true
		}
	}
	if !foundWeird {
		t.Error("escaped label value did not round-trip")
	}

	hist := fams["server_request_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatal("histogram family missing")
	}
	var count, sum float64
	for _, s := range hist.Samples {
		switch s.Name {
		case "server_request_seconds_count":
			count = s.Value
		case "server_request_seconds_sum":
			sum = s.Value
		}
	}
	if count != 4 || math.Abs(sum-5.555) > 1e-9 {
		t.Fatalf("histogram count/sum %v/%v, want 4/5.555", count, sum)
	}
}

func TestValidatePrometheusCatchesBrokenHistograms(t *testing.T) {
	for name, body := range map[string]string{
		"non-cumulative": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`,
		"inf != count": `# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 3
h_sum 1
h_count 5
`,
		"missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_count 5
`,
	} {
		fams, err := ParsePrometheus(strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := ValidatePrometheus(fams); err == nil {
			t.Errorf("%s: validator accepted a broken histogram", name)
		}
	}
}

func TestValidatePrometheusCatchesNaNAndNegativeCounter(t *testing.T) {
	fams, err := ParsePrometheus(strings.NewReader("# TYPE c counter\nc NaN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(fams); err == nil {
		t.Error("NaN sample accepted")
	}
	fams, err = ParsePrometheus(strings.NewReader("# TYPE c counter\nc -1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(fams); err == nil {
		t.Error("negative counter accepted")
	}
}

func TestParsePrometheusAcceptsHelpAndTimestamps(t *testing.T) {
	body := "# HELP g a gauge\n# TYPE g gauge\ng{x=\"y\"} 1.5 1700000000000\n"
	fams, err := ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	g := fams["g"]
	if g == nil || len(g.Samples) != 1 || g.Samples[0].Value != 1.5 || g.Samples[0].Labels["x"] != "y" {
		t.Fatalf("parsed %+v", g)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"server.cache.hits":  "server_cache_hits",
		"ok_name":            "ok_name",
		"weird-name/2":       "weird_name_2",
		"9starts.with.digit": "_9starts_with_digit",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
