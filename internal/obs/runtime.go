package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauges: a small Go-runtime profile (goroutines, heap, GC)
// refreshed by SampleRuntime. PromHandler samples on every scrape;
// long-running binaries that only snapshot to manifests can run
// StartRuntimeSampler instead.
var (
	gGoroutines   = NewGauge("runtime.goroutines")
	gHeapAlloc    = NewGauge("runtime.heap_alloc_bytes")
	gHeapSys      = NewGauge("runtime.heap_sys_bytes")
	gHeapObjects  = NewGauge("runtime.heap_objects")
	gGCCycles     = NewGauge("runtime.gc_cycles")
	gGCPauseTotal = NewGauge("runtime.gc_pause_total_seconds")
	gLastGCPause  = NewGauge("runtime.last_gc_pause_seconds")
	gNextGC       = NewGauge("runtime.next_gc_bytes")
)

// SampleRuntime refreshes the runtime.* gauges from the Go runtime. It
// calls runtime.ReadMemStats, which briefly stops the world — cheap at
// scrape cadence, not something for per-request paths.
func SampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gGoroutines.Set(float64(runtime.NumGoroutine()))
	gHeapAlloc.Set(float64(ms.HeapAlloc))
	gHeapSys.Set(float64(ms.HeapSys))
	gHeapObjects.Set(float64(ms.HeapObjects))
	gGCCycles.Set(float64(ms.NumGC))
	gGCPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		gLastGCPause.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
	}
	gNextGC.Set(float64(ms.NextGC))
}

// StartRuntimeSampler samples the runtime gauges immediately and then
// every interval until the returned stop function is called.
func StartRuntimeSampler(every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	SampleRuntime()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
