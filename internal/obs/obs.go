// Package obs is the observability layer of the simulator: a lock-cheap
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// with deterministic snapshots and expvar export), a phase tracer whose
// spans land in an in-memory ring buffer and can be streamed as
// Chrome-trace JSON (chrome://tracing, Perfetto), structured slog-based
// run logging, and a run manifest that ties a command invocation to its
// configuration, per-phase timings and final metric snapshot.
//
// Everything is designed to cost nothing when disabled: the process-wide
// tracer defaults to nil and every Span method on a nil tracer is a
// branch-and-return with zero allocations (see BenchmarkDisabledSpan),
// and hot-path counters are single atomic adds, batched where a path is
// hot enough for even that to show.
package obs

import "sync/atomic"

// active holds the process-wide tracer. It is nil until SetTracer
// installs one, and every instrumentation site tolerates nil.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer returned by T.
// Passing nil disables tracing again.
func SetTracer(t *Tracer) {
	active.Store(t)
}

// T returns the process-wide tracer, or nil when tracing is disabled.
// All Tracer and Span methods are safe (and free) on a nil receiver, so
// call sites write obs.T().Start(...) unconditionally.
func T() *Tracer {
	return active.Load()
}
