package obs

import "sync/atomic"

// SLO tracks one endpoint's service-level objective as an error budget:
// with objective o, a fraction (1-o) of requests may be "bad" (failed,
// or slower than the latency target) before the budget is exhausted.
// Counters are cumulative over process lifetime — the serving layer is
// expected to restart far more often than a calendar SLO window — and
// all updates are single atomic adds, safe on request hot paths.
type SLO struct {
	endpoint  string
	target    float64 // latency target in seconds
	objective float64 // e.g. 0.99

	total atomic.Int64
	bad   atomic.Int64

	// resolved metric handles: slo.requests / slo.violations /
	// slo.error_budget_remaining, labelled by endpoint.
	cReqs   *Counter
	cViol   *Counter
	gBudget *Gauge
}

// Package-level SLO metric families (one child per endpoint).
var (
	vSLORequests   = NewCounterVec("slo.requests", "endpoint")
	vSLOViolations = NewCounterVec("slo.violations", "endpoint")
	vSLOBudget     = NewGaugeVec("slo.error_budget_remaining", "endpoint")
)

// NewSLO builds the SLO tracker for one endpoint: requests slower than
// latencyTarget seconds (or failed outright) count against an objective
// of the given success fraction. Objectives outside (0,1) default to
// 0.99.
func NewSLO(endpoint string, latencyTarget, objective float64) *SLO {
	if !(objective > 0 && objective < 1) {
		objective = 0.99
	}
	s := &SLO{
		endpoint:  endpoint,
		target:    latencyTarget,
		objective: objective,
		cReqs:     vSLORequests.With(endpoint),
		cViol:     vSLOViolations.With(endpoint),
		gBudget:   vSLOBudget.With(endpoint),
	}
	s.gBudget.Set(1)
	return s
}

// Endpoint returns the endpoint this SLO guards.
func (s *SLO) Endpoint() string { return s.endpoint }

// Target returns the latency target in seconds.
func (s *SLO) Target() float64 { return s.target }

// Objective returns the success-fraction objective.
func (s *SLO) Objective() float64 { return s.objective }

// Observe records one request outcome: a violation when it failed or
// overran the latency target. It refreshes the budget gauge so scrapes
// see burn without recomputation.
func (s *SLO) Observe(latencySeconds float64, success bool) {
	s.total.Add(1)
	s.cReqs.Inc()
	if !success || latencySeconds > s.target {
		s.bad.Add(1)
		s.cViol.Inc()
	}
	s.gBudget.Set(s.BudgetRemaining())
}

// BudgetRemaining returns the fraction of the error budget left: 1 with
// no traffic, 0 exactly at the objective boundary, negative (clamped at
// -1) when the objective is already blown.
func (s *SLO) BudgetRemaining() float64 {
	total := s.total.Load()
	if total == 0 {
		return 1
	}
	allowed := (1 - s.objective) * float64(total)
	if allowed <= 0 {
		return -1
	}
	rem := 1 - float64(s.bad.Load())/allowed
	if rem < -1 {
		rem = -1
	}
	if rem > 1 {
		rem = 1
	}
	return rem
}

// Exhausted reports whether the error budget is spent, requiring at
// least minRequests observations first so a single early failure does
// not flap readiness.
func (s *SLO) Exhausted(minRequests int64) bool {
	if s.total.Load() < minRequests {
		return false
	}
	return s.BudgetRemaining() <= 0
}

// Counts returns the cumulative (total, bad) request counts.
func (s *SLO) Counts() (total, bad int64) {
	return s.total.Load(), s.bad.Load()
}
