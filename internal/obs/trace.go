package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Spans hold a small fixed
// array of them so annotating never allocates.
type Attr struct {
	Key, Value string
}

// maxSpanAttrs is the per-span annotation capacity; further Attr calls
// are dropped.
const maxSpanAttrs = 4

// SpanKind distinguishes timed spans from instantaneous point events.
type SpanKind uint8

const (
	// KindSpan is a complete timed region (Chrome-trace "X" slice).
	KindSpan SpanKind = iota
	// KindInstant is a point-in-time event inside a span (Chrome-trace
	// "i" instant): cache decisions, state transitions.
	KindInstant
)

// SpanEvent is one completed span as stored in a span sink (the
// process tracer's ring buffer or a per-request TraceBuffer).
type SpanEvent struct {
	// Cat groups spans ("experiment", "calibration", "phase", ...).
	Cat string
	// Name identifies the span within its category.
	Name string
	// StartNS and DurNS are nanoseconds relative to the sink's epoch.
	StartNS, DurNS int64
	// Trace, ID and Parent are the request-scoped identity: all zero for
	// plain process-tracer spans started outside any request.
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	// Kind separates timed spans from instant events.
	Kind SpanKind
	// Attrs[:NAttrs] are the span's annotations.
	Attrs  [maxSpanAttrs]Attr
	NAttrs int
}

// spanSink receives completed spans. Two implementations exist: the
// process-wide Tracer (ring buffer of recent spans across all work) and
// the per-request TraceBuffer (every span of one request, bounded).
type spanSink interface {
	// nowNS returns nanoseconds since the sink's epoch.
	nowNS() int64
	// recordSpan stores one completed span or instant event.
	recordSpan(SpanEvent)
}

// Tracer records completed spans into a fixed-capacity ring buffer: when
// full, the oldest span is overwritten and Dropped counts it. Recording
// takes a short mutex; spans are coarse (experiments, calibrations,
// pipeline phases), so contention is negligible. A nil *Tracer is a
// valid, free no-op on every method.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	events  []SpanEvent // ring storage, len grows to cap then stays
	head    int         // index of the oldest event once wrapped
	wrapped bool
	dropped int64
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 8192

// NewTracer returns a tracer whose ring holds up to capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), events: make([]SpanEvent, 0, capacity)}
}

// now returns nanoseconds since the tracer epoch.
func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// nowNS implements spanSink.
func (t *Tracer) nowNS() int64 { return t.now() }

// recordSpan implements spanSink.
func (t *Tracer) recordSpan(ev SpanEvent) {
	t.mu.Lock()
	t.record(ev)
	t.mu.Unlock()
}

// Span is an in-flight timed region. The zero Span (from a nil tracer)
// is inert: Attr, Event and End return immediately. Spans are values and
// live on the caller's stack; none of Start/Attr/End allocates.
type Span struct {
	sink   spanSink
	cat    string
	name   string
	start  int64
	trace  TraceID
	id     SpanID
	parent SpanID
	attrs  [maxSpanAttrs]Attr
	nattrs int
}

// Start opens a span in category cat with the given name. On a nil
// tracer it returns the inert zero Span. The span gets a fresh span ID
// (for context-propagated parenthood) but no trace ID: process-tracer
// spans belong to the run, not to any one request.
func (t *Tracer) Start(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{sink: t, cat: cat, name: name, start: t.now(), id: newSpanID()}
}

// Active reports whether the span records anything. Call sites guard
// allocation-heavy attribute construction (strconv, fmt) behind it.
func (s *Span) Active() bool { return s.sink != nil }

// TraceID returns the span's trace identity (zero outside a request).
func (s *Span) TraceID() TraceID { return s.trace }

// ID returns the span's own identifier (zero on an inert span).
func (s *Span) ID() SpanID { return s.id }

// Attr annotates the span; annotations beyond the per-span capacity are
// dropped. No-op on an inert span.
func (s *Span) Attr(key, value string) {
	if s.sink == nil || s.nattrs >= maxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Value: value}
	s.nattrs++
}

// Event records an instantaneous point event inside the span — cache
// decisions, state transitions — without opening a child span. No-op on
// an inert span.
func (s *Span) Event(name string) {
	if s.sink == nil {
		return
	}
	s.sink.recordSpan(SpanEvent{
		Cat:     s.cat,
		Name:    name,
		StartNS: s.sink.nowNS(),
		Trace:   s.trace,
		ID:      newSpanID(),
		Parent:  s.id,
		Kind:    KindInstant,
	})
}

// End closes the span and records it. No-op on an inert span.
func (s *Span) End() {
	if s.sink == nil {
		return
	}
	s.sink.recordSpan(SpanEvent{
		Cat:     s.cat,
		Name:    s.name,
		StartNS: s.start,
		DurNS:   s.sink.nowNS() - s.start,
		Trace:   s.trace,
		ID:      s.id,
		Parent:  s.parent,
		Attrs:   s.attrs,
		NAttrs:  s.nattrs,
	})
}

// record appends ev to the ring. Caller holds t.mu.
func (t *Tracer) record(ev SpanEvent) {
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.head] = ev
	t.head++
	if t.head == len(t.events) {
		t.head = 0
	}
	t.wrapped = true
	t.dropped++
}

// Events returns the retained spans in recording (end-time) order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.events))
	if t.wrapped {
		out = append(out, t.events[t.head:]...)
		out = append(out, t.events[:t.head]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// Dropped returns how many spans were overwritten because the ring was
// full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// PhaseTiming aggregates the retained spans of one (category, name)
// pair — the per-phase wall times that land in the run manifest.
type PhaseTiming struct {
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// PhaseTimings aggregates the retained timed spans by (category, name),
// sorted by category then name. Instant events carry no duration and
// are excluded.
func (t *Tracer) PhaseTimings() []PhaseTiming {
	evs := t.Events()
	byKey := map[[2]string]*PhaseTiming{}
	for _, ev := range evs {
		if ev.Kind != KindSpan {
			continue
		}
		k := [2]string{ev.Cat, ev.Name}
		pt, ok := byKey[k]
		if !ok {
			pt = &PhaseTiming{Cat: ev.Cat, Name: ev.Name}
			byKey[k] = pt
		}
		ms := float64(ev.DurNS) / 1e6
		pt.Count++
		pt.TotalMS += ms
		if ms > pt.MaxMS {
			pt.MaxMS = ms
		}
	}
	out := make([]PhaseTiming, 0, len(byKey))
	for _, pt := range byKey {
		out = append(out, *pt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// chromeEvent is one Chrome-trace-format event: a "complete" (ph:"X")
// slice or a thread-scoped instant (ph:"i").
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavor of the Chrome trace format,
// loadable in chrome://tracing and Perfetto.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the retained spans as Chrome-trace JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceEvents(w, t.Events())
}

// WriteChromeTraceEvents writes evs as Chrome-trace JSON. Overlapping
// spans (parallel experiments) are assigned to separate lanes (tids)
// greedily so every slice renders without false nesting; instant events
// become thread-scoped "i" marks on the lane they land in.
func WriteChromeTraceEvents(w io.Writer, evs []SpanEvent) error {
	order := make([]int, len(evs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return evs[order[a]].StartNS < evs[order[b]].StartNS
	})
	// laneEnd[l] is the end time of the last span placed on lane l.
	var laneEnd []int64
	out := make([]chromeEvent, 0, len(evs))
	for _, i := range order {
		ev := evs[i]
		lane := -1
		for l, end := range laneEnd {
			if end <= ev.StartNS {
				lane = l
				break
			}
		}
		if lane == -1 {
			laneEnd = append(laneEnd, 0)
			lane = len(laneEnd) - 1
		}
		laneEnd[lane] = ev.StartNS + ev.DurNS
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			Ts:   float64(ev.StartNS) / 1e3,
			Dur:  float64(ev.DurNS) / 1e3,
			Pid:  1,
			Tid:  lane + 1,
		}
		if ev.Kind == KindInstant {
			ce.Ph = "i"
			ce.S = "t"
		}
		if ev.NAttrs > 0 {
			ce.Args = make(map[string]string, ev.NAttrs)
			for _, a := range ev.Attrs[:ev.NAttrs] {
				ce.Args[a.Key] = a.Value
			}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace parses r as Chrome-trace JSON and checks the
// invariants WriteChromeTrace guarantees: at least one event, every
// event a complete ("X") slice or instant ("i") mark with a name,
// non-negative timestamps and durations, and positive pid/tid.
func ValidateChromeTrace(r io.Reader) error {
	var ct chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ct); err != nil {
		return fmt.Errorf("obs: invalid trace JSON: %w", err)
	}
	if len(ct.TraceEvents) == 0 {
		return errors.New("obs: trace has no events")
	}
	for i, ev := range ct.TraceEvents {
		switch {
		case ev.Name == "":
			return fmt.Errorf("obs: trace event %d has no name", i)
		case ev.Ph != "X" && ev.Ph != "i":
			return fmt.Errorf("obs: trace event %d (%s) has phase %q, want X or i", i, ev.Name, ev.Ph)
		case ev.Ts < 0 || ev.Dur < 0:
			return fmt.Errorf("obs: trace event %d (%s) has negative ts/dur", i, ev.Name)
		case ev.Pid <= 0 || ev.Tid <= 0:
			return fmt.Errorf("obs: trace event %d (%s) has non-positive pid/tid", i, ev.Name)
		}
	}
	return nil
}
