package obs

import (
	"context"
	"testing"
)

// The off-path cost gates: with tracing disabled and metric handles
// resolved, the instrumentation the serving hot path executes per
// request must not allocate. AllocsPerRun is skipped under the race
// detector, whose instrumentation allocates; `make obs-serve-check` runs
// both configurations.

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc gates are meaningless under the race detector")
	}
	if got := testing.AllocsPerRun(200, f); got != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, got)
	}
}

func TestDisabledCtxSpanIsAllocFree(t *testing.T) {
	SetTracer(nil)
	ctx := context.Background()
	requireZeroAllocs(t, "StartSpanCtx disabled", func() {
		sp, _ := StartSpanCtx(ctx, "cat", "name")
		sp.Attr("k", "v")
		sp.End()
	})
}

func TestEventCtxWithoutSpanIsAllocFree(t *testing.T) {
	ctx := context.Background()
	requireZeroAllocs(t, "EventCtx without span", func() {
		EventCtx(ctx, "cache", "hit")
	})
}

func TestResolvedVecCounterIncIsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("alloc.test.requests", "endpoint", "status").With("coverage", "2xx")
	requireZeroAllocs(t, "resolved CounterVec child Inc", func() {
		c.Inc()
	})
}

func TestResolvedVecHistogramObserveIsAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("alloc.test.seconds", []float64{0.01, 0.1, 1}, "endpoint").With("coverage")
	requireZeroAllocs(t, "resolved HistogramVec child Observe", func() {
		h.Observe(0.05)
	})
}

func TestGaugeAddIsAllocFree(t *testing.T) {
	var g Gauge
	requireZeroAllocs(t, "Gauge.Add", func() {
		g.Add(1)
		g.Sub(1)
	})
}

func TestSLOObserveIsAllocFree(t *testing.T) {
	s := NewSLO("alloc-test", 0.1, 0.99)
	requireZeroAllocs(t, "SLO.Observe", func() {
		s.Observe(0.01, true)
	})
}
