package obs

import "time"

// PhaseOverrun names one traced phase whose longest span exceeded the
// configured per-phase deadline.
type PhaseOverrun struct {
	Cat        string  `json:"cat"`
	Name       string  `json:"name"`
	MaxMS      float64 `json:"max_ms"`
	DeadlineMS float64 `json:"deadline_ms"`
}

// WatchdogSection is the manifest's record of the per-phase deadline
// watchdog: the deadline that was in force and every phase that blew
// through it. An empty Overruns list is itself information — the
// deadline was watched and nothing overran.
type WatchdogSection struct {
	PhaseDeadlineSec float64        `json:"phase_deadline_sec"`
	Overruns         []PhaseOverrun `json:"overruns,omitempty"`
}

// PhaseOverruns scans aggregated phase timings for spans that ran longer
// than deadline. The watchdog is forensic, not preemptive: phases are
// judged from the tracer's completed spans at manifest time, so a slow
// phase is named in the manifest rather than killed mid-flight (the
// -timeout flag is the preemptive control).
func PhaseOverruns(timings []PhaseTiming, deadline time.Duration) []PhaseOverrun {
	if deadline <= 0 {
		return nil
	}
	limitMS := float64(deadline) / float64(time.Millisecond)
	var out []PhaseOverrun
	for _, pt := range timings {
		if pt.MaxMS > limitMS {
			out = append(out, PhaseOverrun{
				Cat:        pt.Cat,
				Name:       pt.Name,
				MaxMS:      pt.MaxMS,
				DeadlineMS: limitMS,
			})
		}
	}
	return out
}

// NewWatchdogSection evaluates the deadline against the tracer's phase
// timings and returns the manifest section, or nil when no deadline is
// configured.
func NewWatchdogSection(tracer *Tracer, deadline time.Duration) *WatchdogSection {
	if deadline <= 0 || tracer == nil {
		return nil
	}
	return &WatchdogSection{
		PhaseDeadlineSec: deadline.Seconds(),
		Overruns:         PhaseOverruns(tracer.PhaseTimings(), deadline),
	}
}
