package obs

import "testing"

// BenchmarkDisabledSpan is the nil-tracer fast path every
// instrumentation site takes when tracing is off. The acceptance bar is
// 0 B/op, 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := T().Start("experiment", "bench")
		sp.Attr("seed", "2015")
		sp.End()
	}
}

// BenchmarkEnabledSpan is the cost actually paid while tracing.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(1024)
	SetTracer(tr)
	defer SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := T().Start("experiment", "bench")
		sp.Attr("seed", "2015")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogramBuckets([]float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}
