package obs

import (
	"context"
	"testing"
)

// BenchmarkDisabledSpan is the nil-tracer fast path every
// instrumentation site takes when tracing is off. The acceptance bar is
// 0 B/op, 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := T().Start("experiment", "bench")
		sp.Attr("seed", "2015")
		sp.End()
	}
}

// BenchmarkEnabledSpan is the cost actually paid while tracing.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(1024)
	SetTracer(tr)
	defer SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := T().Start("experiment", "bench")
		sp.Attr("seed", "2015")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkDisabledCtxSpan is the context-propagated fast path with
// tracing fully off: no span in the context, no process tracer. The
// acceptance bar is 0 B/op, 0 allocs/op.
func BenchmarkDisabledCtxSpan(b *testing.B) {
	SetTracer(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, _ := StartSpanCtx(ctx, "server", "bench")
		sp.Attr("seed", "2015")
		sp.End()
	}
}

// BenchmarkEnabledCtxSpan is the per-span cost inside a traced request
// (the buffer fills to its cap, after which spans pay the bounded
// drop-count path — the steady-state worst case).
func BenchmarkEnabledCtxSpan(b *testing.B) {
	buf := newTraceBuffer(NewTraceID(), DefaultSpansPerTrace)
	root := buf.Root("request", "bench", SpanID{})
	ctx := ContextWithSpan(context.Background(), root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, _ := StartSpanCtx(ctx, "server", "bench")
		sp.End()
	}
}

// BenchmarkCounterVecResolvedInc is the labelled-counter hot path once
// the handle is resolved: one atomic add, no lock, no allocation.
func BenchmarkCounterVecResolvedInc(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench.requests", "endpoint", "status").With("coverage", "2xx")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterVecWithHit is the unresolved path: one atomic pointer
// load plus a map lookup per increment.
func BenchmarkCounterVecWithHit(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench.with", "endpoint")
	v.With("coverage").Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("coverage").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogramBuckets([]float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}
