//go:build race

package obs

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation adds allocations that would fail the
// zero-alloc gates.
const raceEnabled = true
