package obs

import (
	"io"
	"sync"
	"time"
)

// Default TraceStore shape: how many recent request traces are retained
// and how many spans each may hold before dropping.
const (
	DefaultTraceStoreCapacity = 256
	DefaultSpansPerTrace      = 512
)

// TraceBuffer collects every span of one request-scoped trace. Unlike
// the process tracer's ring, a buffer is bounded by dropping the newest
// spans (the request skeleton recorded first is the valuable part) and
// counts what it dropped.
type TraceBuffer struct {
	id    TraceID
	epoch time.Time
	max   int

	mu      sync.Mutex
	events  []SpanEvent
	dropped int64
}

func newTraceBuffer(id TraceID, max int) *TraceBuffer {
	if max <= 0 {
		max = DefaultSpansPerTrace
	}
	return &TraceBuffer{id: id, epoch: time.Now(), max: max}
}

// ID returns the trace's identity.
func (b *TraceBuffer) ID() TraceID { return b.id }

// nowNS implements spanSink.
func (b *TraceBuffer) nowNS() int64 { return time.Since(b.epoch).Nanoseconds() }

// recordSpan implements spanSink.
func (b *TraceBuffer) recordSpan(ev SpanEvent) {
	b.mu.Lock()
	if len(b.events) < b.max {
		b.events = append(b.events, ev)
	} else {
		b.dropped++
	}
	b.mu.Unlock()
}

// Root opens the trace's root span. parent, when non-zero, is the
// upstream caller's span ID from an incoming traceparent header.
func (b *TraceBuffer) Root(cat, name string, parent SpanID) Span {
	return Span{
		sink:   b,
		cat:    cat,
		name:   name,
		start:  b.nowNS(),
		trace:  b.id,
		id:     newSpanID(),
		parent: parent,
	}
}

// Events returns a copy of the recorded spans in recording order.
func (b *TraceBuffer) Events() []SpanEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]SpanEvent(nil), b.events...)
}

// Dropped returns how many spans exceeded the buffer's capacity.
func (b *TraceBuffer) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// WriteChromeTrace writes the trace as Chrome-trace JSON (loadable in
// chrome://tracing and Perfetto).
func (b *TraceBuffer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceEvents(w, b.Events())
}

// TraceStore is a bounded FIFO collection of recent request traces,
// keyed by trace ID: the backing store of GET /v1/trace/{id}. When full,
// the oldest trace is evicted.
type TraceStore struct {
	maxTraces int
	maxSpans  int

	mu    sync.Mutex
	byID  map[TraceID]*TraceBuffer
	order []TraceID
}

// NewTraceStore builds a store retaining up to maxTraces traces of up to
// maxSpans spans each (defaults apply for non-positive values).
func NewTraceStore(maxTraces, maxSpans int) *TraceStore {
	if maxTraces <= 0 {
		maxTraces = DefaultTraceStoreCapacity
	}
	if maxSpans <= 0 {
		maxSpans = DefaultSpansPerTrace
	}
	return &TraceStore{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		byID:      map[TraceID]*TraceBuffer{},
	}
}

// Start registers and returns the buffer for id, minting a fresh trace
// ID when id is zero. A repeated id (a client continuing one distributed
// trace across requests) returns the existing buffer, so all its spans
// land in one trace.
func (s *TraceStore) Start(id TraceID) *TraceBuffer {
	if id.IsZero() {
		id = NewTraceID()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.byID[id]; ok {
		return b
	}
	b := newTraceBuffer(id, s.maxSpans)
	s.byID[id] = b
	s.order = append(s.order, id)
	for len(s.order) > s.maxTraces {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.byID, old)
	}
	return b
}

// Get returns the retained trace for id, if it has not been evicted.
func (s *TraceStore) Get(id TraceID) (*TraceBuffer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.byID[id]
	return b, ok
}

// Len reports how many traces are currently retained.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}
