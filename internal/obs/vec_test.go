package obs

import (
	"sync"
	"testing"
)

func TestCounterVecChildrenAreIndependentAndStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test.requests", "endpoint", "status")
	a := v.With("coverage", "2xx")
	b := v.With("coverage", "5xx")
	if a == b {
		t.Fatal("distinct label values share a child")
	}
	a.Add(3)
	b.Inc()
	if v.With("coverage", "2xx") != a {
		t.Fatal("With is not stable for the same label values")
	}
	if a.Value() != 3 || b.Value() != 1 {
		t.Fatalf("values %d/%d, want 3/1", a.Value(), b.Value())
	}
}

func TestVecPanicsOnLabelArityMismatch(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test.arity", "endpoint")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	v.With("a", "b")
}

func TestHistogramVecSharesBounds(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.1, 1, 10}
	v := r.HistogramVec("test.lat", bounds, "endpoint")
	h := v.With("rules")
	h.Observe(0.5)
	s := h.Snapshot()
	if len(s.Bounds) != 3 || s.Counts[1] != 1 {
		t.Fatalf("unexpected snapshot %+v", s)
	}
}

func TestVecConcurrentWithIsRaceFree(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test.concurrent", "k")
	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v.With(keys[(g+i)%len(keys)]).Inc()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, k := range keys {
		total += v.With(k).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost updates: total %d, want %d", total, 8*500)
	}
}

func TestSnapshotFlattensVecChildren(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test.flat", "endpoint").With("cov\"er\nage").Add(7)
	snap := r.Snapshot()
	// Label values escape in the flattened key exactly as in Prometheus
	// exposition, so snapshot keys stay unambiguous.
	want := `test.flat{endpoint="cov\"er\nage"}`
	if got, ok := snap.Counters[want]; !ok || got != 7 {
		t.Fatalf("flattened key missing or wrong: %v (keys %v)", got, snap.Counters)
	}
}

func TestRegistryNamesIncludeVecFamilies(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("zz.family", "l").With("v").Inc()
	found := false
	for _, n := range r.Names() {
		if n == "zz.family" {
			found = true
		}
	}
	if !found {
		t.Fatal("vec family missing from Names()")
	}
}
