package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloatCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := r.Gauge("g")
	if g.Value() != 0 {
		t.Errorf("unset gauge = %v, want 0", g.Value())
	}
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want -1.25", got)
	}
	f := r.FloatCounter("f")
	f.Add(0.5)
	f.Add(1.75)
	if got := f.Value(); got != 2.25 {
		t.Errorf("float counter = %v, want 2.25", got)
	}
}

func TestRegistryGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter returned distinct instances for one name")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge returned distinct instances for one name")
	}
	if r.Histogram("h", []float64{1, 2}) != r.Histogram("h", []float64{9}) {
		t.Error("Histogram returned distinct instances for one name")
	}
}

// TestHistogramBucketBoundaries pins the bucket rule: bucket i counts
// v <= bounds[i], boundary values land in the lower bucket, and values
// above the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogramBuckets([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCounts := []int64{2, 2, 2, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("len(Counts) = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-17) > 1e-12 {
		t.Errorf("Sum = %v, want 17", s.Sum)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogramBuckets(%v) did not panic", bounds)
				}
			}()
			NewHistogramBuckets(bounds)
		}()
	}
}

// TestConcurrentCounters hammers one counter, float counter and
// histogram from many goroutines; run under -race (make check does) the
// test also proves the updates are data-race free.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	f := r.FloatCounter("busy")
	h := r.Histogram("lat", []float64{1, 10})
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				f.Add(0.5)
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := f.Value(); got != goroutines*perG*0.5 {
		t.Errorf("float counter = %v, want %v", got, goroutines*perG*0.5)
	}
	if got := h.snapshot().Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestSnapshotDeterminism: snapshots of the same state marshal to
// byte-identical JSON, and a snapshot is a copy — mutating it does not
// reach back into the registry.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(7)
	r.Counter("a.counter").Add(3)
	r.Gauge("z.gauge").Set(1.5)
	r.FloatCounter("m.float").Add(0.25)
	r.Histogram("h.hist", []float64{1, 2}).Observe(1.5)

	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("snapshots differ:\n%s\n%s", j1, j2)
	}
	// encoding/json sorts map keys, so the names must appear in order.
	if i, j := bytes.Index(j1, []byte("a.counter")), bytes.Index(j1, []byte("b.counter")); i < 0 || j < 0 || i > j {
		t.Errorf("counter names not sorted in %s", j1)
	}

	s := r.Snapshot()
	s.Histograms["h.hist"].Counts[0] = 999
	s.Histograms["h.hist"].Bounds[0] = 999
	if got := r.Snapshot().Histograms["h.hist"].Counts[0]; got == 999 {
		t.Error("mutating a snapshot reached the registry histogram counts")
	}
	if got := r.Snapshot().Histograms["h.hist"].Bounds[0]; got == 999 {
		t.Error("mutating a snapshot reached the registry histogram bounds")
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz")
	r.Gauge("aa")
	r.Histogram("mm", []float64{1})
	r.FloatCounter("bb")
	names := r.Names()
	want := []string{"aa", "bb", "mm", "zz"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if parsed.Counters["c"] != 1 {
		t.Errorf("round-tripped counter = %d, want 1", parsed.Counters["c"])
	}
	if !strings.Contains(buf.String(), "\n") {
		t.Error("WriteJSON output not indented")
	}
}
