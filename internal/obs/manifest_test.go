package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// degradedManifest builds the fixed manifest the v2 golden file pins:
// every field deterministic, with a faults section describing a
// degraded run.
func degradedManifest() *Manifest {
	start := time.Date(2026, 2, 3, 10, 0, 0, 0, time.UTC)
	end := start.Add(90 * time.Second)
	return &Manifest{
		Schema:      ManifestSchemaV2,
		Command:     "powersim",
		Args:        []string{"-nodes", "128", "-faults", "seed=7,drop=0.01,meterdrop=0.05"},
		Version:     "test-fixed",
		GoVersion:   "go1.x-fixed",
		Start:       start,
		End:         end,
		DurationSec: 90,
		Config: map[string]any{
			"nodes": 128,
			"seed":  42,
		},
		Phases: []PhaseTiming{
			{Cat: "sim", Name: "run", Count: 1, TotalMS: 80000, MaxMS: 80000},
		},
		Metrics: Snapshot{
			Counters:      map[string]int64{"faults.samples_dropped": 37},
			Gauges:        map[string]float64{},
			FloatCounters: map[string]float64{},
			Histograms:    map[string]HistogramSnapshot{},
		},
		Faults: &FaultsSection{
			Seed:           7,
			Schedule:       "seed=7 drop=0.01 meterdrop=0.05",
			Completeness:   0.9417,
			Degraded:       true,
			DropWindows:    4,
			DroppedSamples: 37,
			MeterFailures:  3,
			MeterRetries:   2,
			MeterGiveUps:   1,
		},
	}
}

// v1Manifest is the same run without fault injection, as the previous
// schema wrote it.
func v1Manifest() *Manifest {
	m := degradedManifest()
	m.Schema = ManifestSchemaV1
	m.Args = []string{"-nodes", "128"}
	m.Faults = nil
	m.Metrics.Counters = map[string]int64{}
	return m
}

// interruptedManifest builds the fixed manifest the v3 golden file
// pins: a run ended by SIGINT with a checkpoint in play and a phase
// over its deadline.
func interruptedManifest() *Manifest {
	m := degradedManifest()
	m.Schema = ManifestSchema
	m.Command = "repro"
	m.Args = []string{"-exp", "figure3", "-checkpoint", "fig3.ckpt", "-timeout", "10m"}
	m.Faults = nil
	m.Status = StatusInterrupted
	m.Exec = &ExecSection{
		TimeoutSec: 600,
		Checkpoint: "fig3.ckpt",
		Resumed:    true,
		Signal:     "interrupt",
	}
	m.Watchdog = &WatchdogSection{
		PhaseDeadlineSec: 60,
		Overruns: []PhaseOverrun{
			{Cat: "sim", Name: "run", MaxMS: 80000, DeadlineMS: 60000},
		},
	}
	return m
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name)
}

func checkGolden(t *testing.T, name string, m *Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := goldenPath(name)
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s drifted from golden file (rerun with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, buf.Bytes(), want)
	}
	return want
}

func TestManifestV3Golden(t *testing.T) {
	data := checkGolden(t, "run-manifest-v3.golden.json", interruptedManifest())

	m, err := ReadManifest(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != ManifestSchema || m.Status != StatusInterrupted {
		t.Errorf("schema %q status %q", m.Schema, m.Status)
	}
	if m.Exec == nil || m.Exec.Signal != "interrupt" || m.Exec.Checkpoint != "fig3.ckpt" ||
		!m.Exec.Resumed || m.Exec.TimeoutSec != 600 {
		t.Errorf("exec section round-trip: %+v", m.Exec)
	}
	if m.Watchdog == nil || m.Watchdog.PhaseDeadlineSec != 60 ||
		len(m.Watchdog.Overruns) != 1 || m.Watchdog.Overruns[0].Name != "run" {
		t.Errorf("watchdog section round-trip: %+v", m.Watchdog)
	}
}

func TestManifestV2BackCompat(t *testing.T) {
	data := checkGolden(t, "run-manifest-v2.golden.json", degradedManifest())

	m, err := ReadManifest(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v2 manifest no longer readable: %v", err)
	}
	if m.Schema != ManifestSchemaV2 {
		t.Errorf("schema %q", m.Schema)
	}
	if m.Status != "" || m.Exec != nil || m.Watchdog != nil {
		t.Errorf("v2 manifest grew v3 sections: %+v", m)
	}
	f := m.Faults
	if f == nil {
		t.Fatal("degraded manifest lost its faults section")
	}
	if f.Seed != 7 || !f.Degraded || f.Completeness != 0.9417 ||
		f.DroppedSamples != 37 || f.MeterGiveUps != 1 {
		t.Errorf("faults section round-trip: %+v", f)
	}
	if f.Schedule != "seed=7 drop=0.01 meterdrop=0.05" {
		t.Errorf("schedule %q", f.Schedule)
	}
}

func TestManifestV1BackCompat(t *testing.T) {
	data := checkGolden(t, "run-manifest-v1.golden.json", v1Manifest())

	m, err := ReadManifest(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 manifest no longer readable: %v", err)
	}
	if m.Schema != ManifestSchemaV1 {
		t.Errorf("schema %q", m.Schema)
	}
	if m.Faults != nil {
		t.Errorf("v1 manifest grew a faults section: %+v", m.Faults)
	}
	if m.Command != "powersim" || m.DurationSec != 90 {
		t.Errorf("v1 fields lost: %+v", m)
	}
}

func TestReadManifestRejects(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader(`{"schema":"nodevar/run-manifest/v99"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ReadManifest(strings.NewReader(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	v1WithFaults := `{"schema":"nodevar/run-manifest/v1","faults":{"seed":1}}`
	if _, err := ReadManifest(strings.NewReader(v1WithFaults)); err == nil {
		t.Error("v1 manifest with a v2 faults section accepted")
	}
	v2WithStatus := `{"schema":"nodevar/run-manifest/v2","status":"ok"}`
	if _, err := ReadManifest(strings.NewReader(v2WithStatus)); err == nil {
		t.Error("v2 manifest with a v3 status accepted")
	}
	v2WithExec := `{"schema":"nodevar/run-manifest/v2","exec":{"signal":"interrupt"}}`
	if _, err := ReadManifest(strings.NewReader(v2WithExec)); err == nil {
		t.Error("v2 manifest with a v3 exec section accepted")
	}
	v3BadStatus := `{"schema":"nodevar/run-manifest/v3","status":"exploded"}`
	if _, err := ReadManifest(strings.NewReader(v3BadStatus)); err == nil {
		t.Error("v3 manifest with an unknown status accepted")
	}
}
