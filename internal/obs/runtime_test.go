package obs

import (
	"testing"
	"time"
)

func TestSampleRuntimePopulatesGauges(t *testing.T) {
	SampleRuntime()
	if gGoroutines.Value() < 1 {
		t.Errorf("runtime.goroutines %v, want >= 1", gGoroutines.Value())
	}
	if gHeapAlloc.Value() <= 0 {
		t.Errorf("runtime.heap_alloc_bytes %v, want > 0", gHeapAlloc.Value())
	}
	if gNextGC.Value() <= 0 {
		t.Errorf("runtime.next_gc_bytes %v, want > 0", gNextGC.Value())
	}
}

func TestRuntimeSamplerStopIsIdempotent(t *testing.T) {
	stop := StartRuntimeSampler(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // second call must not panic
	if gGoroutines.Value() < 1 {
		t.Error("sampler never sampled")
	}
}
