package obs

import (
	"testing"
	"time"
)

func TestPhaseOverruns(t *testing.T) {
	timings := []PhaseTiming{
		{Cat: "phase", Name: "calibrate", Count: 4, TotalMS: 400, MaxMS: 150},
		{Cat: "phase", Name: "coverage_study", Count: 1, TotalMS: 90000, MaxMS: 90000},
		{Cat: "experiment", Name: "table1", Count: 1, TotalMS: 20, MaxMS: 20},
	}
	over := PhaseOverruns(timings, 1*time.Second)
	if len(over) != 1 {
		t.Fatalf("got %d overruns, want 1: %+v", len(over), over)
	}
	o := over[0]
	if o.Name != "coverage_study" || o.MaxMS != 90000 || o.DeadlineMS != 1000 {
		t.Errorf("overrun = %+v", o)
	}
	if got := PhaseOverruns(timings, 0); got != nil {
		t.Errorf("zero deadline produced overruns: %+v", got)
	}
	if got := PhaseOverruns(timings, 2*time.Minute); got != nil {
		t.Errorf("generous deadline produced overruns: %+v", got)
	}
}

func TestNewWatchdogSection(t *testing.T) {
	tr := NewTracer(64)
	sp := tr.Start("phase", "slow")
	time.Sleep(5 * time.Millisecond)
	sp.End()

	if s := NewWatchdogSection(tr, 0); s != nil {
		t.Errorf("no deadline yielded a section: %+v", s)
	}
	if s := NewWatchdogSection(nil, time.Second); s != nil {
		t.Errorf("nil tracer yielded a section: %+v", s)
	}
	s := NewWatchdogSection(tr, time.Millisecond)
	if s == nil || s.PhaseDeadlineSec != 0.001 {
		t.Fatalf("section = %+v", s)
	}
	if len(s.Overruns) != 1 || s.Overruns[0].Name != "slow" {
		t.Errorf("overruns = %+v", s.Overruns)
	}
	// A quiet watchdog still records that it watched.
	quiet := NewWatchdogSection(tr, time.Minute)
	if quiet == nil || len(quiet.Overruns) != 0 {
		t.Errorf("quiet watchdog = %+v", quiet)
	}
}
