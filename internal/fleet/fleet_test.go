package fleet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"nodevar/internal/rng"
	"nodevar/internal/stats"
)

// fakeClock is a deterministic, manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testRegistry(maxFleets int, clk *fakeClock) *Registry {
	return NewRegistry(maxFleets, Config{
		Window:        time.Minute,
		WindowBuckets: 6,
		Now:           clk.Now,
	})
}

func batchOf(seq uint64, watts ...float64) []Sample {
	s := make([]Sample, len(watts))
	for i, w := range watts {
		s[i] = Sample{Node: fmt.Sprintf("node-%03d", i), Seq: seq, Watts: w}
	}
	return s
}

func TestValidateBatchTable(t *testing.T) {
	cases := []struct {
		name    string
		samples []Sample
		ok      bool
	}{
		{"valid", []Sample{{Node: "n1", Seq: 1, Watts: 400}}, true},
		{"empty", nil, false},
		{"zero seq", []Sample{{Node: "n1", Seq: 0, Watts: 400}}, false},
		{"nan watts", []Sample{{Node: "n1", Seq: 1, Watts: math.NaN()}}, false},
		{"inf watts", []Sample{{Node: "n1", Seq: 1, Watts: math.Inf(1)}}, false},
		{"negative watts", []Sample{{Node: "n1", Seq: 1, Watts: -3}}, false},
		{"zero watts", []Sample{{Node: "n1", Seq: 1, Watts: 0}}, false},
		{"empty node", []Sample{{Node: "", Seq: 1, Watts: 400}}, false},
		{"bad node char", []Sample{{Node: "n 1", Seq: 1, Watts: 400}}, false},
		{"dup node in batch", []Sample{
			{Node: "n1", Seq: 1, Watts: 400},
			{Node: "n1", Seq: 2, Watts: 401},
		}, false},
		{"valid mixed", []Sample{
			{Node: "rack-1:n1.a_b", Seq: 7, Watts: 123.4},
			{Node: "rack-1:n2", Seq: 3, Watts: 99},
		}, true},
	}
	for _, tc := range cases {
		err := ValidateBatch(tc.samples)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected, got nil", tc.name)
		}
	}
}

func TestIngestIdempotentSequences(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(4, clk)

	batch := batchOf(1, 400, 410, 420)
	res, err := r.Ingest("prod", batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Duplicates != 0 || res.Nodes != 3 || res.Samples != 3 {
		t.Fatalf("first batch result %+v", res)
	}
	want := r.Get("prod").Snapshot(0.95)

	// Retrying the identical batch is a no-op for every statistic.
	res, err = r.Ingest("prod", batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Duplicates != 3 || res.Samples != 3 {
		t.Fatalf("retried batch result %+v", res)
	}
	got := r.Get("prod").Snapshot(0.95)
	if got.Samples != want.Samples || got.Mean != want.Mean || got.StdDev != want.StdDev {
		t.Fatalf("retry perturbed stats: %+v vs %+v", got, want)
	}
	if got.Duplicates != 3 {
		t.Fatalf("duplicate count %d, want 3", got.Duplicates)
	}

	// A stale sequence for one node is skipped; newer ones apply.
	res, err = r.Ingest("prod", []Sample{
		{Node: "node-000", Seq: 1, Watts: 999}, // stale
		{Node: "node-001", Seq: 2, Watts: 415}, // fresh
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Duplicates != 1 || res.Samples != 4 {
		t.Fatalf("mixed batch result %+v", res)
	}
	acc, ok := r.Get("prod").NodeAccumulator("node-000")
	if !ok || acc.N() != 1 || acc.Mean() != 400 {
		t.Fatalf("stale sample leaked into node-000: n=%d mean=%g", acc.N(), acc.Mean())
	}
}

func TestSnapshotMatchesBatchStats(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(4, clk)
	rnd := rng.New(11)
	values := make([]float64, 200)
	for i := range values {
		values[i] = rnd.Normal(420, 9)
		if values[i] <= 0 {
			values[i] = 1
		}
	}
	for i, v := range values {
		if _, err := r.Ingest("f", []Sample{{Node: fmt.Sprintf("n%03d", i), Seq: 1, Watts: v}}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Get("f").Snapshot(0.95)
	mean, sd := stats.MeanStdDev(values)
	if math.Float64bits(st.Mean) != math.Float64bits(mean) {
		t.Fatalf("snapshot mean %v, batch mean %v", st.Mean, mean)
	}
	if math.Float64bits(st.StdDev) != math.Float64bits(sd) {
		t.Fatalf("snapshot sd %v, batch sd %v", st.StdDev, sd)
	}
	ci := stats.MeanCI(values, stats.CIOptions{Confidence: 0.95})
	if st.CI == nil || *st.CI != ci {
		t.Fatalf("snapshot CI %+v, batch CI %+v", st.CI, ci)
	}
	if st.Min != stats.Min(values) || st.Max != stats.Max(values) {
		t.Fatalf("snapshot extremes [%g,%g]", st.Min, st.Max)
	}
	for name, q := range snapshotQuantiles {
		est := st.Quantiles[name]
		ref := stats.Quantile(values, q)
		if rel := math.Abs(est-ref) / ref; rel > 2*DefaultSketchAlpha {
			t.Fatalf("%s estimate %g vs batch %g (rel %g)", name, est, ref, rel)
		}
	}
}

func TestWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(4, clk) // 1m window, 6 buckets of 10s

	if _, err := r.Ingest("w", batchOf(1, 100, 110, 120)); err != nil {
		t.Fatal(err)
	}
	st := r.Get("w").Snapshot(0.95)
	if st.Window == nil || st.Window.Samples != 3 {
		t.Fatalf("fresh window %+v", st.Window)
	}

	// Half a window later the old samples are still visible...
	clk.Advance(30 * time.Second)
	if _, err := r.Ingest("w", batchOf(2, 200, 210, 220)); err != nil {
		t.Fatal(err)
	}
	st = r.Get("w").Snapshot(0.95)
	if st.Window == nil || st.Window.Samples != 6 {
		t.Fatalf("mid window %+v", st.Window)
	}

	// ...but after the window passes, only recent samples remain, while
	// cumulative stats keep everything.
	clk.Advance(45 * time.Second)
	st = r.Get("w").Snapshot(0.95)
	if st.Window == nil || st.Window.Samples != 3 {
		t.Fatalf("aged window %+v", st.Window)
	}
	if got, want := st.Window.Mean, 210.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("aged window mean %g, want %g", got, want)
	}
	if st.Samples != 6 {
		t.Fatalf("cumulative samples %d, want 6", st.Samples)
	}

	// Far past the window there is no windowed view at all.
	clk.Advance(10 * time.Minute)
	st = r.Get("w").Snapshot(0.95)
	if st.Window != nil {
		t.Fatalf("expired window still present: %+v", st.Window)
	}
}

func TestRegistryEvictsLeastRecentlyIngested(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(2, clk)

	if _, err := r.Ingest("old", batchOf(1, 100)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := r.Ingest("fresh", batchOf(1, 100)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := r.Ingest("new", batchOf(1, 100)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("registry size %d, want 2", r.Len())
	}
	if r.Get("old") != nil {
		t.Fatal("least-recently-ingested fleet survived eviction")
	}
	if r.Get("fresh") == nil || r.Get("new") == nil {
		t.Fatal("recently ingested fleets were evicted")
	}
}

func TestFleetNodeCapacity(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(2, Config{MaxNodes: 2, Now: clk.Now})
	if _, err := r.Ingest("cap", batchOf(1, 100, 110)); err != nil {
		t.Fatal(err)
	}
	_, err := r.Ingest("cap", []Sample{{Node: "extra", Seq: 1, Watts: 120}})
	if !errors.Is(err, ErrFleetFull) {
		t.Fatalf("over-capacity ingest error %v, want ErrFleetFull", err)
	}
	// The rejected batch must not have touched anything.
	st := r.Get("cap").Snapshot(0.95)
	if st.Nodes != 2 || st.Samples != 2 {
		t.Fatalf("rejected batch mutated fleet: %+v", st)
	}
}

func TestOutliersFlagsPlantedNode(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(4, clk)
	rnd := rng.New(5)
	for i := 0; i < 50; i++ {
		w := rnd.Normal(400, 2)
		if _, err := r.Ingest("o", []Sample{{Node: fmt.Sprintf("n%02d", i), Seq: 1, Watts: w}}); err != nil {
			t.Fatal(err)
		}
	}
	// Plant one node far outside the pack (the paper's Figure-4 VID node).
	if _, err := r.Ingest("o", []Sample{{Node: "hot", Seq: 1, Watts: 460}}); err != nil {
		t.Fatal(err)
	}
	rep := r.Get("o").Outliers(3)
	if rep.Degraded {
		t.Fatalf("unexpected degraded report: %s", rep.Note)
	}
	if len(rep.Outliers) == 0 || rep.Outliers[0].Node != "hot" {
		t.Fatalf("planted outlier not flagged first: %+v", rep.Outliers)
	}
	if rep.Outliers[0].Z < 3 {
		t.Fatalf("planted outlier z=%g, want >= 3", rep.Outliers[0].Z)
	}

	// Degraded cases: one node, then zero variance.
	r2 := testRegistry(4, clk)
	if _, err := r2.Ingest("one", batchOf(1, 100)); err != nil {
		t.Fatal(err)
	}
	if rep := r2.Get("one").Outliers(3); !rep.Degraded {
		t.Fatal("single-node report not degraded")
	}
	if _, err := r2.Ingest("flat", batchOf(1, 100, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if rep := r2.Get("flat").Outliers(3); !rep.Degraded {
		t.Fatal("zero-variance report not degraded")
	}
}

// TestFleetConcurrentIngestAndSnapshot hammers one fleet from several
// writers with interleaved readers; under -race this is the package's
// torn-snapshot check. Snapshots must always be internally consistent:
// mean within [min, max], sample counts monotone.
func TestFleetConcurrentIngestAndSnapshot(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(4, clk)
	const writers, rounds = 8, 60

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rng.New(uint64(w + 1))
			for i := 1; i <= rounds; i++ {
				batch := []Sample{{
					Node:  fmt.Sprintf("w%02d-n%02d", w, i%5),
					Seq:   uint64(i),
					Watts: 380 + 40*rnd.Float64(),
				}}
				if _, err := r.Ingest("soak", batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var lastSamples uint64
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		if f := r.Get("soak"); f != nil {
			st := f.Snapshot(0.95)
			if st.Samples < lastSamples {
				t.Fatalf("sample count went backwards: %d -> %d", lastSamples, st.Samples)
			}
			lastSamples = st.Samples
			if st.Samples > 0 && (st.Mean < st.Min || st.Mean > st.Max) {
				t.Fatalf("torn snapshot: mean %g outside [%g, %g]", st.Mean, st.Min, st.Max)
			}
			f.Outliers(2)
		}
	}
	st := r.Get("soak").Snapshot(0.95)
	if st.Samples == 0 || st.Duplicates != 0 {
		t.Fatalf("final state %+v", st)
	}
}

func TestPlanInputs(t *testing.T) {
	clk := newFakeClock()
	r := testRegistry(4, clk)
	values := []float64{400, 410, 420, 430}
	if _, err := r.Ingest("p", batchOf(1, values...)); err != nil {
		t.Fatal(err)
	}
	nodes, samples, mean, sd := r.Get("p").PlanInputs()
	wantMean, wantSD := stats.MeanStdDev(values)
	if nodes != 4 || samples != 4 || mean != wantMean || sd != wantSD {
		t.Fatalf("PlanInputs = (%d, %d, %g, %g), want (4, 4, %g, %g)",
			nodes, samples, mean, sd, wantMean, wantSD)
	}
}
