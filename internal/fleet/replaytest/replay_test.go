package replaytest

import "testing"

// TestBatchEquivalence is the headline equivalence check: 8 seeds, each
// replaying a preset dataset through the streaming fleet in randomized
// batch splits with duplicate re-sends, asserting streaming answers
// match the batch implementations (bit-identical moments and CI and
// sample-size recommendation, bounded-error quantiles). Run under -race
// via `make fleet-check`.
func TestBatchEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		sc := Scenario{Seed: seed}
		// Vary the shape across seeds: batch-per-sample, whole-round
		// batches, aggressive duplicate pressure.
		switch seed % 4 {
		case 1:
			sc.MaxBatch = 1
		case 2:
			sc.MaxBatch = 7
			sc.DupRate = 0.5
		case 3:
			sc.Nodes = 257
			sc.Rounds = 3
		}
		out, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Samples == 0 || out.Recommended < 2 {
			t.Fatalf("seed %d: degenerate outcome %+v", seed, out)
		}
		t.Logf("seed %d: %d samples in %d batches (%d duplicates), rec %d, worst quantile rel err %.2g",
			seed, out.Samples, out.Batches, out.Duplicates, out.Recommended, out.MaxQuantileRelErr)
	}
}

// TestBatchEquivalenceOtherSystems replays the remaining presets so the
// harness is not LRZ-shaped by accident.
func TestBatchEquivalenceOtherSystems(t *testing.T) {
	for _, system := range []string{"titan", "tudresden"} {
		if _, err := Run(Scenario{Seed: 42, System: system, Nodes: 50, Rounds: 4}); err != nil {
			t.Fatalf("%s: %v", system, err)
		}
	}
}
