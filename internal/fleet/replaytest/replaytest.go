// Package replaytest is the batch-equivalence harness for the streaming
// fleet subsystem: it replays a deterministic preset dataset through a
// real fleet.Registry sample-by-sample, splitting the stream into
// seeded random batch sizes and re-sending seeded random duplicate
// batches, then checks the streaming answers against the batch
// internal/stats and internal/sampling implementations computed over
// the same values.
//
// The equivalence contract it enforces:
//
//   - fleet and per-node mean and standard deviation are BIT-IDENTICAL
//     to stats.MeanStdDev / a sequential stats.Accumulator pass — not
//     merely close. Both sides are the same sequential Welford
//     recurrence over the same values in the same order, so any batching
//     of the stream must render the same bits;
//   - the confidence interval equals stats.MeanCI exactly;
//   - the live sample-size recommendation equals sampling.TwoPhase over
//     the full value set exactly;
//   - sketch quantiles agree with the batch type-7 stats.Quantile within
//     twice the sketch's relative accuracy (the documented sketch bound
//     plus headroom for the nearest-rank vs interpolated difference);
//   - duplicate batches are pure no-ops, and the observed sample count
//     is exactly the number of distinct samples applied, monotone over
//     the whole replay.
//
// Like resumetest and chaostest, scenarios reproduce from a single
// integer seed, so a CI failure is a one-line repro.
package replaytest

import (
	"fmt"
	"math"
	"time"

	"nodevar/internal/fleet"
	"nodevar/internal/rng"
	"nodevar/internal/sampling"
	"nodevar/internal/stats"
	"nodevar/internal/systems"
)

// Scenario is one replay experiment.
type Scenario struct {
	// Seed drives everything: the dataset, the batch splits, the
	// duplicate re-sends.
	Seed uint64
	// System selects the preset dataset (default "lrz").
	System string
	// Nodes is the fleet's node count (default 100, capped at the
	// dataset size).
	Nodes int
	// Rounds is how many samples each node contributes (default 5).
	Rounds int
	// MaxBatch caps the random batch size (default the node count; the
	// harness additionally caps batches at the node count so a batch
	// never repeats a node).
	MaxBatch int
	// DupRate is the per-batch probability of re-sending that batch
	// verbatim, exercising idempotency (default 0.2).
	DupRate float64
	// Confidence and Accuracy parameterize the CI and sample-size
	// comparisons (defaults 0.95 and 0.01).
	Confidence float64
	Accuracy   float64
	// Population is the extrapolation target for the sample-size
	// comparison (default 10000, the paper's Table 5 machine).
	Population int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.System == "" {
		sc.System = "lrz"
	}
	if sc.Nodes <= 0 {
		sc.Nodes = 100
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 5
	}
	if sc.MaxBatch <= 0 {
		sc.MaxBatch = sc.Nodes
	}
	if sc.DupRate == 0 {
		sc.DupRate = 0.2
	}
	if sc.Confidence == 0 {
		sc.Confidence = 0.95
	}
	if sc.Accuracy == 0 {
		sc.Accuracy = 0.01
	}
	if sc.Population == 0 {
		sc.Population = 10000
	}
	return sc
}

// Outcome summarizes a successful replay.
type Outcome struct {
	// Samples is the number of distinct samples applied; Duplicates is
	// how many re-sent samples the fleet skipped.
	Samples    uint64
	Duplicates uint64
	// Batches is how many ingest calls the replay issued, duplicates
	// included.
	Batches int
	// Recommended is the live sample-size recommendation, equal by
	// construction to the batch two-phase recommendation.
	Recommended int
	// MaxQuantileRelErr is the worst observed sketch-vs-batch relative
	// quantile error (bounded by 2α).
	MaxQuantileRelErr float64
}

// quantileProbes are the probabilities the equivalence check covers —
// the same grid the fleet stats endpoint serves.
var quantileProbes = []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// Run replays one scenario and verifies every equivalence invariant,
// returning a descriptive error on the first violation.
func Run(sc Scenario) (Outcome, error) {
	sc = sc.withDefaults()
	spec, err := systems.ByKey(sc.System)
	if err != nil {
		return Outcome{}, err
	}
	dataset, err := systems.NodeDataset(spec, sc.Seed)
	if err != nil {
		return Outcome{}, err
	}
	nodes := sc.Nodes
	if nodes > len(dataset) {
		nodes = len(dataset)
	}

	// The full stream in arrival order: round r gives node i the dataset
	// value at (r*nodes + i) mod len(dataset), sequence r+1.
	type beat struct {
		node  int
		seq   uint64
		watts float64
	}
	stream := make([]beat, 0, nodes*sc.Rounds)
	values := make([]float64, 0, nodes*sc.Rounds)
	perNode := make([][]float64, nodes)
	for r := 0; r < sc.Rounds; r++ {
		for i := 0; i < nodes; i++ {
			w := dataset[(r*nodes+i)%len(dataset)]
			stream = append(stream, beat{node: i, seq: uint64(r + 1), watts: w})
			values = append(values, w)
			perNode[i] = append(perNode[i], w)
		}
	}

	// Replay through a real registry with a deterministic clock.
	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	reg := fleet.NewRegistry(4, fleet.Config{
		Window: 24 * time.Hour, // the whole replay fits one window
		Now:    func() time.Time { return now },
	})
	const fleetID = "replay"
	nodeName := func(i int) string { return fmt.Sprintf("node-%04d", i) }

	r := rng.New(sc.Seed)
	maxBatch := sc.MaxBatch
	if maxBatch > nodes {
		maxBatch = nodes // a longer contiguous window would repeat a node
	}
	out := Outcome{}
	var applied uint64
	var wantDup uint64
	send := func(chunk []beat) error {
		batch := make([]fleet.Sample, len(chunk))
		for i, b := range chunk {
			batch[i] = fleet.Sample{Node: nodeName(b.node), Seq: b.seq, Watts: b.watts}
		}
		res, err := reg.Ingest(fleetID, batch)
		if err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
		out.Batches++
		if res.Accepted+res.Duplicates != len(batch) {
			return fmt.Errorf("batch of %d: accepted %d + duplicates %d", len(batch), res.Accepted, res.Duplicates)
		}
		return nil
	}
	for pos := 0; pos < len(stream); {
		n := 1 + r.Intn(maxBatch)
		if pos+n > len(stream) {
			n = len(stream) - pos
		}
		chunk := stream[pos : pos+n]
		if err := send(chunk); err != nil {
			return Outcome{}, err
		}
		applied += uint64(n)
		pos += n
		now = now.Add(137 * time.Millisecond)

		// Idempotency under retries: re-send the same batch, possibly
		// more than once; nothing may change but the duplicate counter.
		for r.Bernoulli(sc.DupRate) {
			if err := send(chunk); err != nil {
				return Outcome{}, fmt.Errorf("duplicate re-send: %w", err)
			}
			wantDup += uint64(n)
		}

		// The observed sample count must track applied samples exactly —
		// monotone, never over- or under-counting.
		st := reg.Get(fleetID).Snapshot(sc.Confidence)
		if st.Samples != applied {
			return Outcome{}, fmt.Errorf("after %d beats: fleet reports %d samples", applied, st.Samples)
		}
	}

	f := reg.Get(fleetID)
	st := f.Snapshot(sc.Confidence)
	out.Samples = st.Samples
	out.Duplicates = st.Duplicates
	if st.Samples != uint64(len(stream)) || st.Duplicates != wantDup {
		return Outcome{}, fmt.Errorf("final counts: %d samples (want %d), %d duplicates (want %d)",
			st.Samples, len(stream), st.Duplicates, wantDup)
	}
	if st.Nodes != nodes {
		return Outcome{}, fmt.Errorf("final node count %d, want %d", st.Nodes, nodes)
	}

	// Fleet moments: bit-identical to the batch pass.
	mean, sd := stats.MeanStdDev(values)
	if math.Float64bits(st.Mean) != math.Float64bits(mean) {
		return Outcome{}, fmt.Errorf("streaming mean %v (%016x) != batch mean %v (%016x)",
			st.Mean, math.Float64bits(st.Mean), mean, math.Float64bits(mean))
	}
	if math.Float64bits(st.StdDev) != math.Float64bits(sd) {
		return Outcome{}, fmt.Errorf("streaming sd %v (%016x) != batch sd %v (%016x)",
			st.StdDev, math.Float64bits(st.StdDev), sd, math.Float64bits(sd))
	}
	if st.Min != stats.Min(values) || st.Max != stats.Max(values) {
		return Outcome{}, fmt.Errorf("streaming extremes [%v, %v] != batch [%v, %v]",
			st.Min, st.Max, stats.Min(values), stats.Max(values))
	}
	ci := stats.MeanCI(values, stats.CIOptions{Confidence: sc.Confidence})
	if st.CI == nil || *st.CI != ci {
		return Outcome{}, fmt.Errorf("streaming CI %+v != batch CI %+v", st.CI, ci)
	}

	// The window spans the whole replay, so the exact-sum windowed view
	// must agree with the batch mean to the carrier's rendering (one
	// correctly-rounded division of exact sums; allow 1 ulp against the
	// Welford path).
	if st.Window == nil || st.Window.Samples != len(stream) {
		return Outcome{}, fmt.Errorf("window %+v does not cover the replay", st.Window)
	}
	if rel := math.Abs(st.Window.Mean-mean) / mean; rel > 1e-12 {
		return Outcome{}, fmt.Errorf("window mean %v vs batch %v (rel %g)", st.Window.Mean, mean, rel)
	}

	// Per-node accumulators: bit-identical to batch Welford per node.
	for i := 0; i < nodes; i++ {
		acc, ok := f.NodeAccumulator(nodeName(i))
		if !ok {
			return Outcome{}, fmt.Errorf("node %d missing after replay", i)
		}
		var want stats.Accumulator
		want.AddSlice(perNode[i])
		if acc.N() != want.N() ||
			math.Float64bits(acc.Mean()) != math.Float64bits(want.Mean()) ||
			math.Float64bits(acc.Variance()) != math.Float64bits(want.Variance()) ||
			acc.Min() != want.Min() || acc.Max() != want.Max() {
			return Outcome{}, fmt.Errorf("node %d: streaming (n=%d μ=%v σ²=%v) != batch (n=%d μ=%v σ²=%v)",
				i, acc.N(), acc.Mean(), acc.Variance(), want.N(), want.Mean(), want.Variance())
		}
	}

	// Quantiles: within twice the sketch's relative accuracy of the
	// batch type-7 estimate.
	sorted := append([]float64(nil), values...)
	for _, q := range quantileProbes {
		want := stats.Quantile(sorted, q)
		got, ok := st.Quantiles[quantileKey(q)]
		if !ok {
			return Outcome{}, fmt.Errorf("snapshot missing quantile %v", q)
		}
		rel := math.Abs(got-want) / want
		if rel > 2*fleet.DefaultSketchAlpha {
			return Outcome{}, fmt.Errorf("q=%v: sketch %v vs batch %v (rel %g > %g)",
				q, got, want, rel, 2*fleet.DefaultSketchAlpha)
		}
		if rel > out.MaxQuantileRelErr {
			out.MaxQuantileRelErr = rel
		}
	}

	// Live sample-size recommendation: exactly the paper's two-phase
	// procedure over the full value set.
	fNodes, fSamples, fMean, fSD := f.PlanInputs()
	if fNodes != nodes || fSamples != uint64(len(stream)) {
		return Outcome{}, fmt.Errorf("plan inputs (%d nodes, %d samples)", fNodes, fSamples)
	}
	livePlan := sampling.Plan{
		Confidence: sc.Confidence,
		Accuracy:   sc.Accuracy,
		CV:         fSD / fMean,
		Population: sc.Population,
	}
	liveRec, err := livePlan.RequiredSampleSize()
	if err != nil {
		return Outcome{}, fmt.Errorf("live plan: %w", err)
	}
	batchRec, err := sampling.TwoPhase(values, sc.Confidence, sc.Accuracy, sc.Population)
	if err != nil {
		return Outcome{}, fmt.Errorf("batch two-phase: %w", err)
	}
	if liveRec != batchRec {
		return Outcome{}, fmt.Errorf("live recommendation %d != batch two-phase %d", liveRec, batchRec)
	}
	out.Recommended = liveRec
	return out, nil
}

// quantileKey renders a probe probability as its snapshot map key
// ("p01" ... "p99").
func quantileKey(q float64) string {
	return fmt.Sprintf("p%02d", int(math.Round(q*100)))
}
