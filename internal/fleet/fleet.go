// Package fleet holds nodevard's live streaming state: named fleets of
// nodes whose per-node power samples arrive continuously over
// /v1/ingest instead of coming from a static preset dataset.
//
// Each fleet maintains, in fixed memory per node:
//
//   - per-node cumulative moments (Welford Accumulator, applied in
//     arrival order) plus idempotent sequence tracking, so retried
//     batches never double-count;
//   - fleet-level cumulative moments, also a sequential Welford pass in
//     arrival order — which makes a full replay of a static dataset
//     bit-identical to the batch internal/stats answers, the property
//     the replaytest harness locks in;
//   - a fixed-memory streaming quantile sketch (stats.QuantileSketch,
//     relative error α);
//   - a rolling window of time-bucketed exact mergeable moments
//     (stats.StreamMoments) and sketches, merged at read time, so
//     recent-σ/μ/CI answers reflect only the configured window.
//
// All mutation goes through Registry.Ingest, which validates a whole
// batch before applying any of it: a rejected batch leaves fleet state
// untouched.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nodevar/internal/stats"
)

// Defaults for Config fields left zero.
const (
	DefaultWindow        = 5 * time.Minute
	DefaultWindowBuckets = 30
	DefaultMaxNodes      = 65536
	DefaultSketchAlpha   = 0.005
	maxNameLen           = 128
)

// ErrFleetFull is returned when a batch would push a fleet past its
// distinct-node capacity.
var ErrFleetFull = errors.New("fleet: node capacity reached")

// ErrEmptyBatch is returned for a zero-length sample batch.
var ErrEmptyBatch = errors.New("fleet: empty sample batch")

// Sample is one per-node power observation. Seq is the node's
// monotonically increasing sequence number; a sample whose Seq does not
// exceed the node's last applied sequence is a duplicate and is skipped,
// which makes batch retries idempotent.
type Sample struct {
	Node  string
	Seq   uint64
	Watts float64
}

// Config parameterizes a fleet. The zero value is usable: every field
// has a production default.
type Config struct {
	// Window is the rolling-statistics span. Default 5m.
	Window time.Duration
	// WindowBuckets is the window's time granularity. Default 30.
	WindowBuckets int
	// MaxNodes caps distinct nodes per fleet. Default 65536.
	MaxNodes int
	// SketchAlpha is the quantile sketch's relative accuracy. Default
	// 0.005.
	SketchAlpha float64
	// SketchBins caps sketch buckets. Default stats.DefaultSketchBins.
	SketchBins int
	// Now supplies the clock; tests inject deterministic time. Default
	// time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.WindowBuckets <= 0 {
		c.WindowBuckets = DefaultWindowBuckets
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = DefaultMaxNodes
	}
	if c.SketchAlpha <= 0 {
		c.SketchAlpha = DefaultSketchAlpha
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// ValidName reports whether s is a legal fleet or node identifier:
// non-empty, at most 128 bytes, drawn from [A-Za-z0-9._:-].
func ValidName(s string) error {
	if s == "" {
		return errors.New("fleet: empty name")
	}
	if len(s) > maxNameLen {
		return fmt.Errorf("fleet: name longer than %d bytes", maxNameLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return fmt.Errorf("fleet: name byte %d (%q) outside [A-Za-z0-9._:-]", i, c)
		}
	}
	return nil
}

// ValidateBatch checks a sample batch without touching any state:
// non-empty, every node name legal and unique within the batch, every
// sequence positive, every power value finite and positive. Ingestion
// validates before applying, so an invalid batch can never leave a fleet
// partially updated.
func ValidateBatch(samples []Sample) error {
	if len(samples) == 0 {
		return ErrEmptyBatch
	}
	seen := make(map[string]struct{}, len(samples))
	for i, s := range samples {
		if err := ValidName(s.Node); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		if s.Seq == 0 {
			return fmt.Errorf("sample %d (%s): sequence must be >= 1", i, s.Node)
		}
		if math.IsNaN(s.Watts) || math.IsInf(s.Watts, 0) {
			return fmt.Errorf("sample %d (%s): watts must be finite", i, s.Node)
		}
		if s.Watts <= 0 {
			return fmt.Errorf("sample %d (%s): watts must be positive, got %v", i, s.Node, s.Watts)
		}
		if _, dup := seen[s.Node]; dup {
			return fmt.Errorf("sample %d: duplicate node %q in batch (one sample per node per batch)", i, s.Node)
		}
		seen[s.Node] = struct{}{}
	}
	return nil
}

// nodeState is one node's live state.
type nodeState struct {
	acc      stats.Accumulator // cumulative, arrival order
	lastSeq  uint64
	last     float64
	lastTime time.Time
}

// winBucket is one time slice of the rolling window.
type winBucket struct {
	epoch  int64 // bucket-duration index; -1 means never used
	mom    stats.StreamMoments
	sketch *stats.QuantileSketch
}

// Fleet is one named fleet's live state. Create via Registry.
type Fleet struct {
	id  string
	cfg Config

	mu         sync.RWMutex
	nodes      map[string]*nodeState
	cum        stats.Accumulator
	sketch     *stats.QuantileSketch
	buckets    []winBucket
	bucketDur  time.Duration
	samples    uint64
	duplicates uint64
	lastIngest time.Time

	// Lock-free mirrors for the registry's eviction scan and gauges.
	lastNano  atomic.Int64
	nodeCount atomic.Int64
}

func newFleet(id string, cfg Config) *Fleet {
	f := &Fleet{
		id:        id,
		cfg:       cfg,
		nodes:     make(map[string]*nodeState),
		sketch:    stats.NewQuantileSketch(cfg.SketchAlpha, cfg.SketchBins),
		buckets:   make([]winBucket, cfg.WindowBuckets),
		bucketDur: cfg.Window / time.Duration(cfg.WindowBuckets),
	}
	if f.bucketDur <= 0 {
		f.bucketDur = time.Nanosecond
	}
	for i := range f.buckets {
		f.buckets[i].epoch = -1
	}
	return f
}

// ID returns the fleet's name.
func (f *Fleet) ID() string { return f.id }

// IngestResult reports what one batch did.
type IngestResult struct {
	// Accepted is the number of samples applied from this batch.
	Accepted int
	// Duplicates is the number skipped because their sequence number was
	// not newer than the node's last applied one.
	Duplicates int
	// NewNodes is how many previously unseen nodes the batch introduced.
	NewNodes int
	// Nodes and Samples are the fleet totals after the batch.
	Nodes   int
	Samples uint64
}

// ingest applies a pre-validated batch under the fleet lock. The
// capacity check runs before any mutation so a rejected batch leaves the
// fleet untouched.
func (f *Fleet) ingest(samples []Sample, now time.Time) (IngestResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	newNodes := 0
	for _, s := range samples {
		if _, ok := f.nodes[s.Node]; !ok {
			newNodes++ // batch nodes are unique (ValidateBatch), so this is exact
		}
	}
	if len(f.nodes)+newNodes > f.cfg.MaxNodes {
		return IngestResult{}, fmt.Errorf("%w: %d nodes + %d new exceeds cap %d",
			ErrFleetFull, len(f.nodes), newNodes, f.cfg.MaxNodes)
	}

	res := IngestResult{NewNodes: newNodes}
	epoch := now.UnixNano() / int64(f.bucketDur)
	b := &f.buckets[int(((epoch%int64(len(f.buckets)))+int64(len(f.buckets)))%int64(len(f.buckets)))]
	if b.epoch != epoch {
		b.epoch = epoch
		b.mom = stats.StreamMoments{}
		b.sketch = stats.NewQuantileSketch(f.cfg.SketchAlpha, f.cfg.SketchBins)
	}

	for _, s := range samples {
		n, ok := f.nodes[s.Node]
		if !ok {
			n = &nodeState{}
			f.nodes[s.Node] = n
		}
		if s.Seq <= n.lastSeq {
			res.Duplicates++
			f.duplicates++
			continue
		}
		n.lastSeq = s.Seq
		n.last = s.Watts
		n.lastTime = now
		n.acc.Add(s.Watts)
		f.cum.Add(s.Watts)
		f.sketch.Add(s.Watts)
		b.mom.Add(s.Watts)
		b.sketch.Add(s.Watts)
		f.samples++
		res.Accepted++
	}
	f.lastIngest = now
	f.lastNano.Store(now.UnixNano())
	f.nodeCount.Store(int64(len(f.nodes)))
	res.Nodes = len(f.nodes)
	res.Samples = f.samples
	return res, nil
}

// snapshotQuantiles are the probabilities served in stats snapshots.
var snapshotQuantiles = map[string]float64{
	"p01": 0.01, "p05": 0.05, "p25": 0.25, "p50": 0.50,
	"p75": 0.75, "p90": 0.90, "p95": 0.95, "p99": 0.99,
}

// WindowStats summarizes the rolling window at snapshot time.
type WindowStats struct {
	Span      time.Duration
	Samples   int
	Mean      float64
	StdDev    float64 // 0 when Samples < 2
	CI        *stats.Interval
	Quantiles map[string]float64
}

// Stats is a consistent point-in-time view of one fleet, taken under a
// single read lock so counts, moments and quantiles all describe the
// same sample set (no torn snapshots).
type Stats struct {
	Fleet      string
	Nodes      int
	Samples    uint64
	Duplicates uint64
	Mean       float64
	StdDev     float64 // 0 when Samples < 2
	CV         float64 // 0 when undefined
	Min        float64
	Max        float64
	CI         *stats.Interval
	Quantiles  map[string]float64
	Window     *WindowStats
	LastIngest time.Time
}

// Snapshot captures the fleet's cumulative and windowed statistics at
// the given confidence level. Fleets always hold at least one sample
// (they are created by a successful ingest), so Mean/Min/Max are always
// defined; StdDev, CV and CI require two.
func (f *Fleet) Snapshot(confidence float64) Stats {
	now := f.cfg.Now()
	f.mu.RLock()
	defer f.mu.RUnlock()

	acc := f.cum
	st := Stats{
		Fleet:      f.id,
		Nodes:      len(f.nodes),
		Samples:    f.samples,
		Duplicates: f.duplicates,
		LastIngest: f.lastIngest,
	}
	if acc.N() == 0 {
		return st
	}
	st.Mean = acc.Mean()
	st.Min = acc.Min()
	st.Max = acc.Max()
	if acc.N() >= 2 {
		st.StdDev = acc.StdDev()
		if st.Mean != 0 {
			st.CV = st.StdDev / st.Mean
		}
		ci := stats.MeanCIFromStats(st.Mean, st.StdDev, acc.N(), stats.CIOptions{Confidence: confidence})
		st.CI = &ci
	}
	st.Quantiles = make(map[string]float64, len(snapshotQuantiles))
	for name, q := range snapshotQuantiles {
		st.Quantiles[name] = f.sketch.Quantile(q)
	}
	st.Window = f.windowLocked(now, confidence)
	return st
}

// windowLocked merges the live window buckets; the caller holds at least
// a read lock. Returns nil when the window holds no samples.
func (f *Fleet) windowLocked(now time.Time, confidence float64) *WindowStats {
	curEpoch := now.UnixNano() / int64(f.bucketDur)
	oldest := curEpoch - int64(len(f.buckets)) + 1
	var mom stats.StreamMoments
	sketch := stats.NewQuantileSketch(f.cfg.SketchAlpha, f.cfg.SketchBins)
	for i := range f.buckets {
		b := &f.buckets[i]
		if b.epoch >= oldest && b.epoch <= curEpoch && b.mom.N() > 0 {
			mom.Merge(&b.mom)
			sketch.Merge(b.sketch)
		}
	}
	if mom.N() == 0 {
		return nil
	}
	w := &WindowStats{
		Span:    f.cfg.Window,
		Samples: mom.N(),
		Mean:    mom.Mean(),
	}
	if mom.N() >= 2 {
		w.StdDev = mom.StdDev()
		ci := stats.MeanCIFromStats(w.Mean, w.StdDev, mom.N(), stats.CIOptions{Confidence: confidence})
		w.CI = &ci
	}
	w.Quantiles = make(map[string]float64, len(snapshotQuantiles))
	for name, q := range snapshotQuantiles {
		w.Quantiles[name] = sketch.Quantile(q)
	}
	return w
}

// PlanInputs returns the live inputs a sample-size recommendation needs:
// node count, total samples, mean and standard deviation of all samples
// seen. StdDev is 0 when fewer than two samples exist.
func (f *Fleet) PlanInputs() (nodes int, samples uint64, mean, sd float64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	acc := f.cum
	nodes, samples = len(f.nodes), f.samples
	if acc.N() >= 1 {
		mean = acc.Mean()
	}
	if acc.N() >= 2 {
		sd = acc.StdDev()
	}
	return nodes, samples, mean, sd
}

// Outlier is one flagged node in the spirit of the paper's Figure 4
// VID/fan-speed case study: a node whose mean power signature deviates
// from the fleet's distribution of node means.
type Outlier struct {
	Node    string
	Samples int
	Mean    float64
	StdDev  float64 // within-node; 0 when Samples < 2
	Last    float64
	Z       float64 // (node mean − mean of node means) / sd of node means
}

// OutlierReport is the result of an outlier scan.
type OutlierReport struct {
	Fleet       string
	Nodes       int
	MeanOfMeans float64
	StdOfMeans  float64
	Threshold   float64
	// Degraded marks a scan that could not compute z-scores (fewer than
	// two nodes, or zero variance across node means); Note says why.
	Degraded bool
	Note     string
	Outliers []Outlier
}

// Outliers flags nodes whose mean power is at least threshold standard
// deviations from the mean of node means. Node iteration is in sorted
// name order so the scan is deterministic; results are ordered by |z|
// descending, ties by name.
func (f *Fleet) Outliers(threshold float64) OutlierReport {
	f.mu.RLock()
	defer f.mu.RUnlock()

	rep := OutlierReport{
		Fleet:     f.id,
		Nodes:     len(f.nodes),
		Threshold: threshold,
		Outliers:  []Outlier{},
	}
	if len(f.nodes) < 2 {
		rep.Degraded = true
		rep.Note = "outlier detection needs at least 2 nodes"
		return rep
	}
	names := make([]string, 0, len(f.nodes))
	for name := range f.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	var means stats.Accumulator
	for _, name := range names {
		means.Add(f.nodes[name].acc.Mean())
	}
	rep.MeanOfMeans = means.Mean()
	rep.StdOfMeans = means.StdDev()
	if rep.StdOfMeans == 0 {
		rep.Degraded = true
		rep.Note = "zero variance across node means; z-scores undefined"
		return rep
	}
	for _, name := range names {
		n := f.nodes[name]
		z := (n.acc.Mean() - rep.MeanOfMeans) / rep.StdOfMeans
		if math.Abs(z) < threshold {
			continue
		}
		o := Outlier{
			Node:    name,
			Samples: n.acc.N(),
			Mean:    n.acc.Mean(),
			Last:    n.last,
			Z:       z,
		}
		if n.acc.N() >= 2 {
			o.StdDev = n.acc.StdDev()
		}
		rep.Outliers = append(rep.Outliers, o)
	}
	sort.Slice(rep.Outliers, func(i, j int) bool {
		zi, zj := math.Abs(rep.Outliers[i].Z), math.Abs(rep.Outliers[j].Z)
		if zi != zj {
			return zi > zj
		}
		return rep.Outliers[i].Node < rep.Outliers[j].Node
	})
	return rep
}

// NodeAccumulator returns a copy of one node's cumulative accumulator
// (for tests and equivalence harnesses) and whether the node exists.
func (f *Fleet) NodeAccumulator(node string) (stats.Accumulator, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.nodes[node]
	if !ok {
		return stats.Accumulator{}, false
	}
	return n.acc, true
}
