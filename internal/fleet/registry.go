package fleet

import (
	"fmt"
	"sync"

	"nodevar/internal/obs"
)

// DefaultMaxFleets caps how many named fleets a registry tracks at once.
const DefaultMaxFleets = 64

var (
	mSamplesAccepted  = obs.NewCounter("fleet.samples_accepted")
	mSamplesDuplicate = obs.NewCounter("fleet.samples_duplicate")
	mBatchesRejected  = obs.NewCounter("fleet.batches_rejected")
	mFleetsCreated    = obs.NewCounter("fleet.created")
	mFleetsEvicted    = obs.NewCounter("fleet.evicted")
	gFleetsActive     = obs.NewGauge("fleet.active")
	gNodesTotal       = obs.NewGauge("fleet.nodes_total")
)

// Registry owns all live fleets. When a batch names a fleet past the
// capacity cap, the least-recently-ingested fleet is evicted to make
// room — live fleets are a cache over the stream, not a durable store.
type Registry struct {
	mu        sync.RWMutex
	cfg       Config
	maxFleets int
	fleets    map[string]*Fleet
}

// NewRegistry builds a registry holding at most maxFleets fleets
// (<= 0 selects DefaultMaxFleets), each configured from cfg.
func NewRegistry(maxFleets int, cfg Config) *Registry {
	if maxFleets <= 0 {
		maxFleets = DefaultMaxFleets
	}
	return &Registry{
		cfg:       cfg.withDefaults(),
		maxFleets: maxFleets,
		fleets:    make(map[string]*Fleet),
	}
}

// Ingest validates and applies one sample batch to the named fleet,
// creating (and if necessary evicting to make room for) the fleet. A
// returned error guarantees no state changed.
func (r *Registry) Ingest(id string, samples []Sample) (IngestResult, error) {
	if err := ValidName(id); err != nil {
		mBatchesRejected.Inc()
		return IngestResult{}, fmt.Errorf("fleet id: %w", err)
	}
	if err := ValidateBatch(samples); err != nil {
		mBatchesRejected.Inc()
		return IngestResult{}, err
	}
	f := r.getOrCreate(id)
	res, err := f.ingest(samples, r.cfg.Now())
	if err != nil {
		mBatchesRejected.Inc()
		return IngestResult{}, err
	}
	mSamplesAccepted.Add(int64(res.Accepted))
	mSamplesDuplicate.Add(int64(res.Duplicates))
	if res.NewNodes > 0 {
		gNodesTotal.Add(float64(res.NewNodes))
	}
	return res, nil
}

func (r *Registry) getOrCreate(id string) *Fleet {
	r.mu.RLock()
	f := r.fleets[id]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.fleets[id]; f != nil {
		return f
	}
	if len(r.fleets) >= r.maxFleets {
		r.evictOldestLocked()
	}
	f = newFleet(id, r.cfg)
	r.fleets[id] = f
	mFleetsCreated.Inc()
	gFleetsActive.Set(float64(len(r.fleets)))
	return f
}

// evictOldestLocked drops the fleet with the oldest last-ingest time;
// ties break on name so eviction is deterministic. Caller holds the
// write lock.
func (r *Registry) evictOldestLocked() {
	var victim *Fleet
	var victimName string
	for name, f := range r.fleets {
		if victim == nil {
			victim, victimName = f, name
			continue
		}
		vn, fn := victim.lastNano.Load(), f.lastNano.Load()
		if fn < vn || (fn == vn && name < victimName) {
			victim, victimName = f, name
		}
	}
	if victim == nil {
		return
	}
	delete(r.fleets, victimName)
	mFleetsEvicted.Inc()
	gNodesTotal.Sub(float64(victim.nodeCount.Load()))
	gFleetsActive.Set(float64(len(r.fleets)))
}

// Get returns the named fleet, or nil when unknown.
func (r *Registry) Get(id string) *Fleet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fleets[id]
}

// Len returns the number of live fleets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fleets)
}
