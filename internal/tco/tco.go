// Package tco projects electricity cost and total cost of ownership from
// power measurements — the procurement use case the paper's introduction
// motivates ("the observed variations of 20% in power consumption lead
// directly to a possible 20% increase in electricity costs").
//
// The projections propagate measurement uncertainty: given a confidence
// interval on power, every cost output is an interval too.
package tco

import (
	"errors"

	"nodevar/internal/stats"
)

// CostModel holds the facility economics.
type CostModel struct {
	// EnergyPricePerKWh is the electricity price (currency-agnostic).
	EnergyPricePerKWh float64
	// PUE is the facility's power usage effectiveness (total facility
	// power / IT power); 1.0 means no overhead. Typical 2015 values were
	// 1.2-1.8.
	PUE float64
	// UtilizationFactor is the fraction of time the machine draws the
	// measured power (1.0 = the measured load runs around the clock).
	UtilizationFactor float64
	// Years is the projection horizon.
	Years float64
}

// Validate checks the model.
func (m CostModel) Validate() error {
	switch {
	case m.EnergyPricePerKWh <= 0:
		return errors.New("tco: energy price must be positive")
	case m.PUE < 1:
		return errors.New("tco: PUE below 1 is not physical")
	case m.UtilizationFactor <= 0 || m.UtilizationFactor > 1:
		return errors.New("tco: utilization factor outside (0, 1]")
	case m.Years <= 0:
		return errors.New("tco: projection horizon must be positive")
	}
	return nil
}

const hoursPerYear = 24 * 365.25

// EnergyCost returns the projected electricity cost for a constant IT
// power draw in watts over the model horizon.
func (m CostModel) EnergyCost(itWatts float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if itWatts < 0 {
		return 0, errors.New("tco: negative power")
	}
	kwh := itWatts / 1000 * m.PUE * m.UtilizationFactor * hoursPerYear * m.Years
	return kwh * m.EnergyPricePerKWh, nil
}

// Projection is a cost estimate with uncertainty bounds.
type Projection struct {
	// Cost is the point estimate.
	Cost float64
	// Lo and Hi bound the cost at the interval's confidence.
	Lo, Hi float64
	// Confidence is inherited from the power interval.
	Confidence float64
}

// Spread returns (Hi-Lo)/Cost, the relative cost uncertainty.
func (p Projection) Spread() float64 {
	if p.Cost == 0 {
		return 0
	}
	return (p.Hi - p.Lo) / p.Cost
}

// ProjectFromInterval converts a power confidence interval (watts) into a
// cost projection.
func (m CostModel) ProjectFromInterval(ci stats.Interval) (Projection, error) {
	mid, err := m.EnergyCost(ci.Center)
	if err != nil {
		return Projection{}, err
	}
	lo, err := m.EnergyCost(ci.Lo())
	if err != nil {
		return Projection{}, err
	}
	hi, err := m.EnergyCost(ci.Hi())
	if err != nil {
		return Projection{}, err
	}
	return Projection{Cost: mid, Lo: lo, Hi: hi, Confidence: ci.Confidence}, nil
}

// ProjectFleet extrapolates per-node power measurements to a fleet of
// fleetNodes nodes and projects the electricity cost with a t-based
// confidence interval (finite population correction applied for the
// fleet).
func (m CostModel) ProjectFleet(perNodeWatts []float64, fleetNodes int, confidence float64) (Projection, error) {
	if fleetNodes <= 0 {
		return Projection{}, errors.New("tco: fleet size must be positive")
	}
	if len(perNodeWatts) < 2 {
		return Projection{}, errors.New("tco: need at least 2 measured nodes")
	}
	ci := stats.MeanCI(perNodeWatts, stats.CIOptions{
		Confidence:     confidence,
		PopulationSize: fleetNodes,
	})
	fleetCI := stats.Interval{
		Center:     ci.Center * float64(fleetNodes),
		HalfWidth:  ci.HalfWidth * float64(fleetNodes),
		Confidence: ci.Confidence,
	}
	return m.ProjectFromInterval(fleetCI)
}

// MispricingFromBias returns the absolute cost error caused by a biased
// power measurement: the cost difference between the reported and true
// power. A 20% power understatement on a megawatt machine is real money —
// the paper's TCO argument.
func (m CostModel) MispricingFromBias(trueWatts, reportedWatts float64) (float64, error) {
	trueCost, err := m.EnergyCost(trueWatts)
	if err != nil {
		return 0, err
	}
	reportedCost, err := m.EnergyCost(reportedWatts)
	if err != nil {
		return 0, err
	}
	return reportedCost - trueCost, nil
}
