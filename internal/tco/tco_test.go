package tco

import (
	"math"
	"testing"

	"nodevar/internal/rng"
	"nodevar/internal/stats"
)

func model() CostModel {
	return CostModel{
		EnergyPricePerKWh: 0.25,
		PUE:               1.4,
		UtilizationFactor: 1,
		Years:             1,
	}
}

func TestCostModelValidate(t *testing.T) {
	bad := []CostModel{
		{},
		{EnergyPricePerKWh: 0.25, PUE: 0.8, UtilizationFactor: 1, Years: 1},
		{EnergyPricePerKWh: 0.25, PUE: 1.2, UtilizationFactor: 0, Years: 1},
		{EnergyPricePerKWh: 0.25, PUE: 1.2, UtilizationFactor: 1.5, Years: 1},
		{EnergyPricePerKWh: 0.25, PUE: 1.2, UtilizationFactor: 1, Years: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	if err := model().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyCostHandCheck(t *testing.T) {
	// 1 kW IT load, PUE 1.4, 0.25/kWh, 1 year:
	// 1 * 1.4 * 8766 h * 0.25 = 3068.1.
	got, err := model().EnergyCost(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3068.1) > 0.1 {
		t.Errorf("cost = %v, want ~3068.1", got)
	}
	if _, err := model().EnergyCost(-1); err == nil {
		t.Error("negative power accepted")
	}
}

func TestProjectFromInterval(t *testing.T) {
	ci := stats.Interval{Center: 1e6, HalfWidth: 2e5, Confidence: 0.95} // 1 MW ± 20%
	p, err := model().ProjectFromInterval(ci)
	if err != nil {
		t.Fatal(err)
	}
	if !(p.Lo < p.Cost && p.Cost < p.Hi) {
		t.Errorf("projection ordering: %+v", p)
	}
	// The paper's argument: ±20% power ⇒ ±20% cost (spread 40%).
	if math.Abs(p.Spread()-0.4) > 1e-9 {
		t.Errorf("cost spread = %v, want 0.4", p.Spread())
	}
	if p.Confidence != 0.95 {
		t.Errorf("confidence = %v", p.Confidence)
	}
}

func TestProjectFleet(t *testing.T) {
	r := rng.New(5)
	perNode := make([]float64, 16)
	for i := range perNode {
		perNode[i] = r.Normal(400, 8)
	}
	p, err := model().ProjectFleet(perNode, 4000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// 4000 nodes × ~400 W = 1.6 MW → ~4.9M/yr at this model.
	if p.Cost < 3e6 || p.Cost > 7e6 {
		t.Errorf("fleet cost = %v", p.Cost)
	}
	if p.Spread() <= 0 || p.Spread() > 0.1 {
		t.Errorf("fleet cost spread = %v", p.Spread())
	}
	if _, err := model().ProjectFleet(perNode, 0, 0.95); err == nil {
		t.Error("zero fleet accepted")
	}
	if _, err := model().ProjectFleet(perNode[:1], 100, 0.95); err == nil {
		t.Error("single measurement accepted")
	}
}

func TestMispricingFromBias(t *testing.T) {
	// A gamed Level-1 result understating 1 MW by 20% hides real cost.
	m := model()
	delta, err := m.MispricingFromBias(1e6, 0.8e6)
	if err != nil {
		t.Fatal(err)
	}
	trueCost, _ := m.EnergyCost(1e6)
	if math.Abs(delta+0.2*trueCost) > 1 {
		t.Errorf("mispricing = %v, want %v", delta, -0.2*trueCost)
	}
}

func TestCostScalesLinearlyInEverything(t *testing.T) {
	m := model()
	base, _ := m.EnergyCost(500)
	m2 := m
	m2.Years = 5
	fiveYear, _ := m2.EnergyCost(500)
	if math.Abs(fiveYear-5*base) > 1e-9 {
		t.Errorf("5-year cost %v != 5x %v", fiveYear, base)
	}
	m3 := m
	m3.UtilizationFactor = 0.5
	half, _ := m3.EnergyCost(500)
	if math.Abs(half-base/2) > 1e-9 {
		t.Errorf("half-utilization cost %v != half of %v", half, base)
	}
}
