// Package systems holds calibrated presets of the supercomputers the
// paper studies. Each preset carries the published reference values
// (Tables 2-4), an HPL progression configuration that reproduces the
// run-shape class of the machine (flat CPU run vs steep in-core GPU run),
// and generators for the synthetic datasets: per-node power samples
// (Figure 2, Table 4) and system power traces (Figure 1, Table 2).
//
// The raw per-node measurements behind the paper were never published,
// so the generators moment-match the published statistics exactly and
// reproduce the documented qualitative structure (near-normality, a few
// outliers, warm-up ramps, GPU power tails). See DESIGN.md §2.
package systems

import (
	"errors"
	"fmt"

	"nodevar/internal/hpl"
)

// TraceTargets are the published Table 2 segment averages for one HPL
// run, in kilowatts, plus the approximate runtime.
type TraceTargets struct {
	// RuntimeSeconds is the approximate core-phase runtime.
	RuntimeSeconds float64
	// CoreKW, First20KW and Last20KW are the published averages.
	CoreKW, First20KW, Last20KW float64
}

// Spec describes one studied system.
type Spec struct {
	// Key is the short machine id used on the command line.
	Key string
	// Name and Site describe the machine.
	Name string
	Site string
	// CPUs, RAM, Measured and Workload are the Table 3 columns.
	CPUs     string
	RAM      string
	Measured string
	Workload string
	// TotalNodes is N of Table 4 (nodes, or blades for Calcul Québec).
	TotalNodes int
	// MeasuredNodes is how many nodes the per-node study measured.
	MeasuredNodes int
	// MeanWatts and StdWatts are μ̂ and σ̂ of Table 4 (0 if the system is
	// not part of the inter-node study).
	MeanWatts float64
	StdWatts  float64
	// Trace holds the Table 2 targets (nil if the system is not part of
	// the power-over-time study).
	Trace *TraceTargets
	// GPU marks accelerated systems.
	GPU bool
	// HPL is the progression configuration template reproducing the
	// machine's run-shape class; MatrixOrder is filled in by
	// CalibratedTrace to hit the runtime target.
	HPL hpl.Config
}

// CV returns the published σ̂/μ̂ (0 when the system has no Table 4 row).
func (s Spec) CV() float64 {
	if s.MeanWatts == 0 {
		return 0
	}
	return s.StdWatts / s.MeanWatts
}

// The paper's systems.
var (
	// Colosse at Calcul Québec: the "traditional" flat 7-hour CPU run of
	// Table 2, and (as Calcul Québec blades) the first row of Table 4.
	Colosse = Spec{
		Key:           "colosse",
		Name:          "Colosse",
		Site:          "Calcul Québec, Université Laval",
		CPUs:          "2x Intel X5560",
		RAM:           "24 GiB",
		Measured:      "480x2 nodes",
		Workload:      "HPL",
		TotalNodes:    480, // blades (2 nodes each), as counted in Table 4
		MeasuredNodes: 480,
		MeanWatts:     581.93,
		StdWatts:      11.66,
		Trace: &TraceTargets{
			RuntimeSeconds: 7 * 3600,
			CoreKW:         398.7,
			First20KW:      398.1,
			Last20KW:       398.2,
		},
		HPL: hpl.Config{
			BlockSize:      128,
			Nodes:          960,
			NodePeak:       90,
			PeakEfficiency: 0.85,
			TailKnee:       0.0015,
			PanelFraction:  0.25,
		},
	}

	// Sequoia-25: the temporary Sequoia+Vulcan combination at LLNL, the
	// largest system of the study (28-hour run, ~2M cores).
	Sequoia = Spec{
		Key:        "sequoia",
		Name:       "Sequoia-25",
		Site:       "Lawrence Livermore National Laboratory",
		CPUs:       "IBM BG/Q (PowerPC A2)",
		RAM:        "16 GiB",
		Measured:   "full system",
		Workload:   "HPL",
		TotalNodes: 122880,
		Trace: &TraceTargets{
			RuntimeSeconds: 28 * 3600,
			CoreKW:         11503.3,
			First20KW:      11628.7,
			Last20KW:       11244.2,
		},
		HPL: hpl.Config{
			BlockSize:      256,
			Nodes:          122880,
			NodePeak:       204.8,
			PeakEfficiency: 0.82,
			TailKnee:       0.04,
			PanelFraction:  0.2,
		},
	}

	// Piz Daint at CSCS: the representative heterogeneous CPU/GPU system
	// whose Level 1 window can move the result by >20%.
	PizDaint = Spec{
		Key:        "pizdaint",
		Name:       "Piz Daint",
		Site:       "Swiss National Supercomputing Centre",
		CPUs:       "1x Intel E5-2670 + 1x NVIDIA K20X",
		RAM:        "32 GiB",
		Measured:   "full system",
		Workload:   "HPL (in-core GPU)",
		TotalNodes: 5272,
		GPU:        true,
		Trace: &TraceTargets{
			RuntimeSeconds: 1.5 * 3600,
			CoreKW:         833.4,
			First20KW:      873.8,
			Last20KW:       698.4,
		},
		HPL: hpl.Config{
			BlockSize:      512,
			Nodes:          5272,
			NodePeak:       1400,
			PeakEfficiency: 0.7,
			TailKnee:       0.03,
			PanelFraction:  0.03,
			StepOverhead:   0.5,
		},
	}

	// L-CSC at GSI: the four-GPUs-per-node cluster ranked #1 on the
	// Nov 2014 Green500; the most gameable profile of Table 2 and the
	// subject of the Section 5 VID/fan case study.
	LCSC = Spec{
		Key:        "lcsc",
		Name:       "L-CSC",
		Site:       "GSI Helmholtz Centre for Heavy Ion Research",
		CPUs:       "2x Intel E5-2690 + 4x AMD FirePro S9150",
		RAM:        "256 GiB",
		Measured:   "full system",
		Workload:   "HPL (OpenCL, in-core GPU)",
		TotalNodes: 160,
		GPU:        true,
		Trace: &TraceTargets{
			RuntimeSeconds: 1.5 * 3600,
			CoreKW:         59.1,
			First20KW:      63.9,
			Last20KW:       46.8,
		},
		HPL: hpl.Config{
			BlockSize:      1024,
			Nodes:          160,
			NodePeak:       10200,
			PeakEfficiency: 0.62,
			TailKnee:       0.045,
			PanelFraction:  0.02,
			StepOverhead:   3.0,
		},
	}

	// CEAFat: the quad-socket "fat" partition at CEA.
	CEAFat = Spec{
		Key:           "ceafat",
		Name:          "CEA (Fat)",
		Site:          "French Alternative Energies and Atomic Energy Commission",
		CPUs:          "4x Intel X7560",
		RAM:           "16x4 GiB",
		Measured:      "316 nodes",
		Workload:      "HPL",
		TotalNodes:    360,
		MeasuredNodes: 316,
		MeanWatts:     971.74,
		StdWatts:      19.81,
	}

	// CEAThin: the dual-socket "thin" partition at CEA.
	CEAThin = Spec{
		Key:           "ceathin",
		Name:          "CEA (Thin)",
		Site:          "French Alternative Energies and Atomic Energy Commission",
		CPUs:          "2x Intel E5-2680",
		RAM:           "16x4 GiB",
		Measured:      "640 nodes",
		Workload:      "HPL",
		TotalNodes:    5040,
		MeasuredNodes: 640,
		MeanWatts:     366.84,
		StdWatts:      10.41,
	}

	// LRZ: SuperMUC at the Leibniz Supercomputing Centre; its 516-node
	// pilot sample drives the Figure 3 bootstrap study.
	LRZ = Spec{
		Key:           "lrz",
		Name:          "LRZ (SuperMUC)",
		Site:          "Leibniz Supercomputing Centre",
		CPUs:          "2x Intel E5-2680",
		RAM:           "32 GiB",
		Measured:      "512 nodes",
		Workload:      "MPrime",
		TotalNodes:    9216,
		MeasuredNodes: 516,
		MeanWatts:     209.88,
		StdWatts:      5.31,
	}

	// Titan at ORNL: per-GPU power for the GPUs in 1000 nodes.
	Titan = Spec{
		Key:           "titan",
		Name:          "Titan",
		Site:          "Oak Ridge National Laboratory",
		CPUs:          "1x AMD 6274 + 1x NVIDIA K20X",
		RAM:           "32 GiB",
		Measured:      "GPUs in 1000 nodes",
		Workload:      "Rodinia CFD",
		TotalNodes:    18688,
		MeasuredNodes: 1000,
		MeanWatts:     90.74,
		StdWatts:      1.81,
		GPU:           true,
	}

	// TUDresden: the 210-node Taurus partition running FIRESTARTER.
	TUDresden = Spec{
		Key:           "tudresden",
		Name:          "TU Dresden",
		Site:          "Technische Universität Dresden",
		CPUs:          "2x Intel E5-2690",
		RAM:           "8x4 GiB",
		Measured:      "210 nodes",
		Workload:      "FIRESTARTER",
		TotalNodes:    210,
		MeasuredNodes: 210,
		MeanWatts:     386.86,
		StdWatts:      5.85,
	}

	// TsubameKFC: not part of Tables 2-4, but the documented 10.9%
	// interval-gaming case of Section 3 (Green500 Nov 2013).
	TsubameKFC = Spec{
		Key:        "tsubamekfc",
		Name:       "TSUBAME-KFC",
		Site:       "Tokyo Institute of Technology",
		CPUs:       "2x Intel E5-2620 v2 + 4x NVIDIA K20X",
		RAM:        "64 GiB",
		Measured:   "full system",
		Workload:   "HPL (in-core GPU)",
		TotalNodes: 40,
		GPU:        true,
		Trace: &TraceTargets{
			RuntimeSeconds: 3600,
			// No segment table published; the documented fact is the
			// 10.9% measurement reduction from optimal-interval choice.
			CoreKW:    31.2,
			First20KW: 32.9,
			Last20KW:  26.1,
		},
		HPL: hpl.Config{
			BlockSize:      768,
			Nodes:          40,
			NodePeak:       5600,
			PeakEfficiency: 0.65,
			TailKnee:       0.035,
			PanelFraction:  0.025,
			StepOverhead:   2.0,
		},
	}
)

// All returns every preset, in the paper's presentation order.
func All() []Spec {
	return []Spec{Colosse, Sequoia, PizDaint, LCSC, CEAFat, CEAThin, LRZ, Titan, TUDresden, TsubameKFC}
}

// Table2Systems returns the four systems of Table 2 / Figure 1.
func Table2Systems() []Spec {
	return []Spec{Colosse, Sequoia, PizDaint, LCSC}
}

// Table4Systems returns the six systems of Table 4 / Figure 2, in table
// order.
func Table4Systems() []Spec {
	return []Spec{Colosse, CEAFat, CEAThin, LRZ, Titan, TUDresden}
}

// ByKey finds a preset by its Key.
func ByKey(key string) (Spec, error) {
	for _, s := range All() {
		if s.Key == key {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("systems: unknown system %q", key)
}

// ErrNoTraceTargets is returned when a trace is requested for a system
// that has no Table 2 row.
var ErrNoTraceTargets = errors.New("systems: system has no trace targets")

// ErrNoNodeData is returned when a node dataset is requested for a system
// without Table 4 statistics.
var ErrNoNodeData = errors.New("systems: system has no per-node statistics")
