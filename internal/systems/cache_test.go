package systems

import (
	"sync"
	"testing"
)

func TestCalibrationCacheReturnsEquivalentResults(t *testing.T) {
	ResetCalibrationCache()
	trCold, calCold, err := CalibratedTrace(LCSC, 400)
	if err != nil {
		t.Fatal(err)
	}
	trWarm, calWarm, err := CalibratedTrace(LCSC, 400)
	if err != nil {
		t.Fatal(err)
	}
	if trWarm != trCold {
		t.Error("warm call did not return the memoized trace")
	}
	if calWarm != calCold {
		t.Error("warm call did not return the memoized calibration")
	}
	// The memoized result matches a fresh fit exactly: the fit is a pure
	// function of the key.
	trFresh, calFresh, err := CalibratedTraceUncached(LCSC, 400)
	if err != nil {
		t.Fatal(err)
	}
	if trFresh.Len() != trCold.Len() {
		t.Fatalf("lengths differ: %d vs %d", trFresh.Len(), trCold.Len())
	}
	for i, s := range trFresh.Samples() {
		if s != trCold.Samples()[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, s, trCold.Samples()[i])
		}
	}
	if calFresh.IdleKW != calCold.IdleKW || calFresh.DynamicKW != calCold.DynamicKW ||
		calFresh.Warmup != calCold.Warmup || calFresh.MaxRelErr != calCold.MaxRelErr {
		t.Errorf("calibrations differ: %+v vs %+v", calFresh, calCold)
	}
}

func TestCalibrationCacheKeyedByResolution(t *testing.T) {
	ResetCalibrationCache()
	tr400, _, err := CalibratedTrace(Colosse, 400)
	if err != nil {
		t.Fatal(err)
	}
	tr500, _, err := CalibratedTrace(Colosse, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tr400 == tr500 {
		t.Error("different resolutions shared one cache slot")
	}
	if tr400.Len() != 400 || tr500.Len() != 500 {
		t.Errorf("lengths = %d, %d", tr400.Len(), tr500.Len())
	}
}

func TestCalibrationCacheKeyedByConfig(t *testing.T) {
	ResetCalibrationCache()
	trOrig, _, err := CalibratedTrace(TsubameKFC, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Same Key, different targets: must not collide.
	altered := TsubameKFC
	targets := *TsubameKFC.Trace
	targets.CoreKW *= 1.1
	targets.First20KW *= 1.1
	targets.Last20KW *= 1.1
	altered.Trace = &targets
	trAlt, _, err := CalibratedTrace(altered, 300)
	if err != nil {
		t.Fatal(err)
	}
	if trAlt == trOrig {
		t.Fatal("altered targets hit the original cache slot")
	}
	avgOrig, err := trOrig.Average()
	if err != nil {
		t.Fatal(err)
	}
	avgAlt, err := trAlt.Average()
	if err != nil {
		t.Fatal(err)
	}
	if !(float64(avgAlt) > float64(avgOrig)*1.05) {
		t.Errorf("altered-target trace average %v not above original %v", avgAlt, avgOrig)
	}
}

func TestCalibrationCacheSingleflight(t *testing.T) {
	ResetCalibrationCache()
	const goroutines = 8
	traces := make([]any, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			tr, _, err := CalibratedTrace(PizDaint, 350)
			if err != nil {
				traces[g] = err
				return
			}
			traces[g] = tr
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if traces[g] != traces[0] {
			t.Fatalf("goroutine %d got a different trace/err: %v vs %v", g, traces[g], traces[0])
		}
	}
}
