package systems

import (
	"testing"

	"nodevar/internal/obs"
)

// cacheCounters reads the calibration-cache metrics as they appear in
// the default registry's snapshot — the same view -metrics-out and
// expvar export.
func cacheCounters(t *testing.T) (hits, misses, resets, evictions int64) {
	t.Helper()
	c := obs.Default().Snapshot().Counters
	return c["systems.calibration_cache.hits"],
		c["systems.calibration_cache.misses"],
		c["systems.calibration_cache.resets"],
		c["systems.calibration_cache.evictions"]
}

// TestCalibrationCacheMetrics asserts the cache's hit/miss/reset/
// eviction accounting through the metrics registry. Counters are
// process-cumulative, so everything is checked as deltas.
func TestCalibrationCacheMetrics(t *testing.T) {
	ResetCalibrationCache() // start from an empty cache
	hits0, misses0, resets0, _ := cacheCounters(t)

	if _, _, err := CalibratedTrace(LCSC, 320); err != nil {
		t.Fatal(err)
	}
	hits, misses, _, _ := cacheCounters(t)
	if misses != misses0+1 {
		t.Errorf("cold call: misses = %d, want %d", misses, misses0+1)
	}
	if hits != hits0 {
		t.Errorf("cold call: hits = %d, want %d", hits, hits0)
	}

	if _, _, err := CalibratedTrace(LCSC, 320); err != nil {
		t.Fatal(err)
	}
	hits, misses, _, _ = cacheCounters(t)
	if hits != hits0+1 {
		t.Errorf("warm call: hits = %d, want %d", hits, hits0+1)
	}
	if misses != misses0+1 {
		t.Errorf("warm call: misses = %d, want %d (no new fit)", misses, misses0+1)
	}

	// A different resolution is a different key: another miss.
	if _, _, err := CalibratedTrace(LCSC, 330); err != nil {
		t.Fatal(err)
	}
	if _, misses, _, _ = cacheCounters(t); misses != misses0+2 {
		t.Errorf("second key: misses = %d, want %d", misses, misses0+2)
	}

	// Reset: one reset, and both live entries evicted.
	_, _, _, evBefore := cacheCounters(t)
	ResetCalibrationCache()
	_, _, resets, evictions := cacheCounters(t)
	if resets != resets0+1 {
		t.Errorf("resets = %d, want %d", resets, resets0+1)
	}
	if got := evictions - evBefore; got != 2 {
		t.Errorf("evictions on reset = %d, want 2", got)
	}

	// The evicted key must fit again: a fresh miss, not a hit.
	if _, _, err := CalibratedTrace(LCSC, 320); err != nil {
		t.Fatal(err)
	}
	hits, misses, _, _ = cacheCounters(t)
	if misses != misses0+3 {
		t.Errorf("post-reset call: misses = %d, want %d", misses, misses0+3)
	}
	if hits != hits0+1 {
		t.Errorf("post-reset call: hits = %d, want %d", hits, hits0+1)
	}
}
