package systems

import (
	"math"
	"testing"
)

func mustStudy(t *testing.T, cfg VIDStudyConfig) *VIDStudy {
	t.Helper()
	s, err := RunVIDStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVIDStudyDefaults(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 1})
	if len(s.Nodes) != 56 {
		t.Errorf("default node count %d", len(s.Nodes))
	}
	if s.FanDeltaWatts <= 100 {
		t.Errorf("fan effect %v W, paper says >100 W", s.FanDeltaWatts)
	}
}

func TestVIDStudyRejectsTiny(t *testing.T) {
	if _, err := RunVIDStudy(VIDStudyConfig{Nodes: 2}); err == nil {
		t.Error("2-node study accepted")
	}
}

func TestVIDsAreQuantizedAndInRange(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 2, Nodes: 200})
	for _, n := range s.Nodes {
		found := false
		for _, lv := range vidLevels {
			if n.VID == lv {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("VID %v not a defined level", n.VID)
		}
	}
}

func TestTunedConfigurationAnchors(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 3, Nodes: 500})
	// Paper: σ of tuned efficiency is 1.2%.
	if cv := s.TunedCV(); cv < 0.008 || cv > 0.016 {
		t.Errorf("tuned CV = %.4f, paper says ~1.2%%", cv)
	}
	// Tuned efficiency near the Green500 submission value (5.27 GFLOPS/W).
	if mean := s.MeanTuned(); mean < 4.8 || mean > 5.8 {
		t.Errorf("tuned mean efficiency = %.2f GFLOPS/W", mean)
	}
	// "the efficiency in the most efficient configuration ... is
	// unrelated to the VID".
	if r2 := s.TunedVIDCorrelation(); r2 > 0.05 {
		t.Errorf("tuned efficiency correlates with VID: r² = %v", r2)
	}
}

func TestDefaultConfigurationTrend(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 4, Nodes: 500})
	// Higher VID → more voltage → less efficient: clear negative slope.
	if slope := s.DefaultSlope(); slope >= -1 {
		t.Errorf("default slope = %v GFLOPS/W per volt, want clearly negative", slope)
	}
	// Tuned configuration is more efficient than default.
	if s.MeanTuned() <= s.MeanDefault() {
		t.Errorf("tuned %.2f not above default %.2f", s.MeanTuned(), s.MeanDefault())
	}
	// The paper's DVFS tuning on L-CSC bought ~22%.
	gain := s.MeanTuned()/s.MeanDefault() - 1
	if gain < 0.1 || gain > 0.35 {
		t.Errorf("tuning gain = %.3f, paper reports ~22%%", gain)
	}
}

func TestFanCorrectionParallelSlope(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 5, Nodes: 500})
	ds, cs := s.DefaultSlope(), s.CorrectedSlope()
	// "Since the offset due to fan speed is constant, both curves have
	// the same slope". Corrected slope is the same sign and within ~35%
	// (the 1/(P-ΔP) transform stretches it slightly).
	if cs >= 0 {
		t.Errorf("corrected slope = %v, want negative", cs)
	}
	if ratio := cs / ds; ratio < 0.8 || ratio > 1.5 {
		t.Errorf("corrected/default slope ratio = %v", ratio)
	}
	// Correction raises efficiency for every node.
	for i, n := range s.Nodes {
		if n.EffCorrected <= n.EffDefault {
			t.Fatalf("node %d: corrected %.3f not above default %.3f", i, n.EffCorrected, n.EffDefault)
		}
	}
}

func TestFanEffectDominatesSiliconVariability(t *testing.T) {
	// "The power variability due to the different fan speeds is many
	// times more significant than the variability of the GPUs
	// themselves": the fan delta (>100 W) dwarfs the per-node silicon
	// power spread (~1% of ~900 W ≈ 9 W).
	s := mustStudy(t, VIDStudyConfig{Seed: 6, Nodes: 300})
	siliconSpread := s.TunedCV() * 900
	if s.FanDeltaWatts < 5*siliconSpread {
		t.Errorf("fan delta %v W not dominant over silicon spread %v W",
			s.FanDeltaWatts, siliconSpread)
	}
}

func TestScreenLowVID(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 7, Nodes: 100})
	idx := s.ScreenLowVID(10)
	if len(idx) != 10 {
		t.Fatalf("screen returned %d", len(idx))
	}
	// Every screened node's VID is <= every unscreened node's VID.
	maxScreened := 0.0
	picked := map[int]bool{}
	for _, i := range idx {
		picked[i] = true
		if s.Nodes[i].VID > maxScreened {
			maxScreened = s.Nodes[i].VID
		}
	}
	for i, n := range s.Nodes {
		if !picked[i] && n.VID < maxScreened {
			t.Fatalf("unscreened node %d has lower VID %v than screened max %v", i, n.VID, maxScreened)
		}
	}
	// Clamping.
	if got := len(s.ScreenLowVID(1000)); got != 100 {
		t.Errorf("oversized screen = %d", got)
	}
	if got := len(s.ScreenLowVID(-5)); got != 0 {
		t.Errorf("negative screen = %d", got)
	}
}

func TestScreeningBiasPositive(t *testing.T) {
	// "by measuring only nodes with low VID, it is possible to obtain a
	// favorably biased efficiency result."
	s := mustStudy(t, VIDStudyConfig{Seed: 8, Nodes: 400})
	bias := s.ScreeningBias(40)
	if bias <= 0 {
		t.Errorf("screening bias = %v, want positive", bias)
	}
	if bias > 0.05 {
		t.Errorf("screening bias = %v implausibly large", bias)
	}
}

func TestVIDStudyDeterministic(t *testing.T) {
	a := mustStudy(t, VIDStudyConfig{Seed: 9})
	b := mustStudy(t, VIDStudyConfig{Seed: 9})
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("study not deterministic")
		}
	}
}

func TestVIDStudyPhysicalRanges(t *testing.T) {
	s := mustStudy(t, VIDStudyConfig{Seed: 10, Nodes: 200})
	for i, n := range s.Nodes {
		if n.EffTuned < 4 || n.EffTuned > 7 ||
			n.EffDefault < 3.5 || n.EffDefault > 6 ||
			math.IsNaN(n.EffCorrected) {
			t.Fatalf("node %d out of physical range: %+v", i, n)
		}
	}
}
