package systems

import (
	"fmt"
	"math"

	"nodevar/internal/fit"
	"nodevar/internal/hpl"
	"nodevar/internal/power"
)

// Calibration describes how a system's trace generator was fitted to the
// published Table 2 segment averages.
type Calibration struct {
	// IdleKW and DynamicKW are the fitted baseline and full-utilization
	// dynamic system power, in kilowatts.
	IdleKW, DynamicKW float64
	// Warmup is the fitted relative warm-up depth: the power deficit at
	// t=0 that decays with time constant WarmupTau.
	Warmup    float64
	WarmupTau float64
	// MaxRelErr is the largest relative error against the three published
	// segment averages after fitting.
	MaxRelErr float64
	// Run is the underlying HPL progression.
	Run *hpl.Run
}

// traceGrid holds the normalized utilization curve sampled on a uniform
// grid, from which both the fit and the final trace are produced.
type traceGrid struct {
	times []float64
	util  []float64
	warm  []float64 // exp(-t/tau) per grid point
}

func buildGrid(run *hpl.Run, samples int, tau float64) *traceGrid {
	g := &traceGrid{
		times: make([]float64, samples),
		util:  make([]float64, samples),
		warm:  make([]float64, samples),
	}
	T := run.CoreDuration
	for k := 0; k < samples; k++ {
		t := T * float64(k) / float64(samples-1)
		if k == samples-1 {
			// Sample utilization just inside the final step: at t = T the
			// run is over and utilization would read 0.
			t = T * (1 - 1e-9)
		}
		g.times[k] = T * float64(k) / float64(samples-1)
		g.util[k] = run.UtilizationAt(t)
		g.warm[k] = math.Exp(-g.times[k] / tau)
	}
	return g
}

// segmentMeans evaluates the parametric power on the grid and returns
// (core, first20, last20) averages. Power model:
// P(t) = (A + B·u(t)) · (1 - W·exp(-t/τ)).
func (g *traceGrid) segmentMeans(a, b, w float64) (core, first, last float64) {
	n := len(g.times)
	n20 := n / 5
	var sumAll, sumFirst, sumLast float64
	for k := 0; k < n; k++ {
		p := (a + b*g.util[k]) * (1 - w*g.warm[k])
		sumAll += p
		if k < n20 {
			sumFirst += p
		}
		if k >= n-n20 {
			sumLast += p
		}
	}
	return sumAll / float64(n), sumFirst / float64(n20), sumLast / float64(n20)
}

// defaultTraceSamples is the trace resolution used when samples <= 1.
const defaultTraceSamples = 2000

// CalibratedTraceUncached generates the system power trace for a Table 2
// system: the HPL progression shape with a thermal warm-up term, with
// baseline, dynamic range and warm-up depth fitted so the core /
// first-20% / last-20% averages match the published values. samples
// controls the trace resolution (default 2000 when <= 1).
//
// Every call runs the full Nelder-Mead fit. Almost all callers should use
// CalibratedTrace (see cache.go), which memoizes the result.
func CalibratedTraceUncached(s Spec, samples int) (*power.Trace, *Calibration, error) {
	if s.Trace == nil {
		return nil, nil, ErrNoTraceTargets
	}
	if samples <= 1 {
		samples = defaultTraceSamples
	}
	tt := s.Trace

	cfg := s.HPL
	n, err := hpl.MatrixOrderForRuntime(cfg, tt.RuntimeSeconds)
	if err != nil {
		return nil, nil, fmt.Errorf("systems: sizing %s: %w", s.Name, err)
	}
	cfg.MatrixOrder = n
	run, err := hpl.Simulate(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("systems: simulating %s: %w", s.Name, err)
	}

	tau := 0.05 * run.CoreDuration
	if tau > 1200 {
		tau = 1200
	}
	if tau < 300 {
		tau = 300
	}
	grid := buildGrid(run, samples, tau)

	// Initial guesses from the published numbers and the utilization
	// shape.
	uFirst := run.SegmentUtilization(0, 0.2)
	uLast := run.SegmentUtilization(0.8, 1)
	uMean := run.MeanUtilization()
	b0 := tt.CoreKW * 0.6
	if du := uFirst - uLast; du > 1e-6 {
		if est := (tt.First20KW - tt.Last20KW) / du; est > 0 {
			b0 = est
		}
	}
	a0 := tt.CoreKW - b0*uMean
	if a0 < 0 {
		a0 = 0
	}
	objective := func(x []float64) float64 {
		a, b, w := x[0], x[1], x[2]
		if a < 0 || b <= 0 || w < -0.5 || w > 0.5 {
			return math.Inf(1)
		}
		core, first, last := grid.segmentMeans(a, b, w)
		e1 := (core - tt.CoreKW) / tt.CoreKW
		e2 := (first - tt.First20KW) / tt.First20KW
		e3 := (last - tt.Last20KW) / tt.Last20KW
		return e1*e1 + e2*e2 + e3*e3
	}
	res := fit.NelderMead(objective, []float64{a0, b0, 0.01}, fit.NelderMeadOptions{
		MaxIter: 4000,
		TolF:    1e-22,
		TolX:    1e-12,
	})
	a, b, w := res.X[0], res.X[1], res.X[2]
	core, first, last := grid.segmentMeans(a, b, w)
	maxRel := math.Max(math.Abs(core-tt.CoreKW)/tt.CoreKW,
		math.Max(math.Abs(first-tt.First20KW)/tt.First20KW,
			math.Abs(last-tt.Last20KW)/tt.Last20KW))

	samplesOut := make([]power.Sample, samples)
	for k := range samplesOut {
		p := (a + b*grid.util[k]) * (1 - w*grid.warm[k])
		samplesOut[k] = power.Sample{Time: grid.times[k], Power: power.Watts(p * 1000)}
	}
	tr, err := power.NewTrace(samplesOut)
	if err != nil {
		return nil, nil, err
	}
	cal := &Calibration{
		IdleKW:    a,
		DynamicKW: b,
		Warmup:    w,
		WarmupTau: tau,
		MaxRelErr: maxRel,
		Run:       run,
	}
	return tr, cal, nil
}
