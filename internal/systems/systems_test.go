package systems

import (
	"math"
	"testing"

	"nodevar/internal/power"
	"nodevar/internal/stats"
)

func TestByKey(t *testing.T) {
	s, err := ByKey("lcsc")
	if err != nil || s.Name != "L-CSC" {
		t.Errorf("ByKey(lcsc) = %+v, %v", s, err)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestAllHaveDistinctKeys(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Key == "" || seen[s.Key] {
			t.Errorf("duplicate or empty key %q", s.Key)
		}
		seen[s.Key] = true
	}
}

func TestTable4SystemsMatchPaperStats(t *testing.T) {
	// Table 4 published values, in presentation order.
	want := []struct {
		name   string
		n      int
		mu, sd float64
	}{
		{"Colosse", 480, 581.93, 11.66},
		{"CEA (Fat)", 360, 971.74, 19.81},
		{"CEA (Thin)", 5040, 366.84, 10.41},
		{"LRZ (SuperMUC)", 9216, 209.88, 5.31},
		{"Titan", 18688, 90.74, 1.81},
		{"TU Dresden", 210, 386.86, 5.85},
	}
	got := Table4Systems()
	if len(got) != len(want) {
		t.Fatalf("system count %d", len(got))
	}
	for i, w := range want {
		s := got[i]
		if s.Name != w.name || s.TotalNodes != w.n || s.MeanWatts != w.mu || s.StdWatts != w.sd {
			t.Errorf("row %d = %q N=%d μ=%v σ=%v, want %+v", i, s.Name, s.TotalNodes, s.MeanWatts, s.StdWatts, w)
		}
		// CV within the paper's 1.5-3% band.
		if cv := s.CV(); cv < 0.014 || cv > 0.03 {
			t.Errorf("%s CV = %v outside the paper's band", s.Name, cv)
		}
	}
}

func TestNodeDatasetMomentsExact(t *testing.T) {
	for _, s := range Table4Systems() {
		xs, err := NodeDataset(s, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(xs) != s.MeasuredNodes {
			t.Errorf("%s: dataset size %d, want %d", s.Name, len(xs), s.MeasuredNodes)
		}
		mean, sd := stats.MeanStdDev(xs)
		if math.Abs(mean-s.MeanWatts) > 1e-9 || math.Abs(sd-s.StdWatts) > 1e-9 {
			t.Errorf("%s: moments (%v, %v), want (%v, %v)", s.Name, mean, sd, s.MeanWatts, s.StdWatts)
		}
	}
}

func TestNodeDatasetNearNormalWithOutliers(t *testing.T) {
	xs, err := NodeDataset(LRZ, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.CheckNormality(xs)
	if !rep.ApproxNormal() {
		t.Errorf("LRZ dataset not near-normal: %+v", rep)
	}
	// Outlier structure: the most extreme node should sit beyond 3σ, as
	// in the paper's Figure 2 ("outliers ... of a larger magnitude than
	// we would typically see arising in truly normal data").
	maxDev := 0.0
	for _, x := range xs {
		if d := math.Abs(x-LRZ.MeanWatts) / LRZ.StdWatts; d > maxDev {
			maxDev = d
		}
	}
	if maxDev < 3 {
		t.Errorf("no outliers beyond 3σ (max %.2fσ)", maxDev)
	}
}

func TestNodeDatasetDeterministicAndSeedSensitive(t *testing.T) {
	a, _ := NodeDataset(Titan, 1)
	b, _ := NodeDataset(Titan, 1)
	c, _ := NodeDataset(Titan, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataset not deterministic")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestNodeDatasetErrors(t *testing.T) {
	if _, err := NodeDataset(Sequoia, 1); err != ErrNoNodeData {
		t.Errorf("Sequoia dataset err = %v", err)
	}
}

func TestPilotSample(t *testing.T) {
	xs, err := PilotSample(LRZ, 3, 516)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 516 {
		t.Errorf("pilot size %d", len(xs))
	}
	all, _ := PilotSample(LRZ, 3, 0)
	if len(all) != LRZ.MeasuredNodes {
		t.Errorf("full pilot size %d", len(all))
	}
}

func TestCalibratedTracesMatchTable2(t *testing.T) {
	for _, s := range Table2Systems() {
		s := s
		t.Run(s.Key, func(t *testing.T) {
			t.Parallel()
			tr, cal, err := CalibratedTrace(s, 2000)
			if err != nil {
				t.Fatal(err)
			}
			if cal.MaxRelErr > 0.005 {
				t.Errorf("calibration error %.4f%% exceeds 0.5%%", cal.MaxRelErr*100)
			}
			rep, err := power.Segments(tr)
			if err != nil {
				t.Fatal(err)
			}
			tt := s.Trace
			if rel := math.Abs(rep.Core.Kilowatts()-tt.CoreKW) / tt.CoreKW; rel > 0.005 {
				t.Errorf("core = %.1f kW, want %.1f (rel %.4f)", rep.Core.Kilowatts(), tt.CoreKW, rel)
			}
			if rel := math.Abs(rep.First20.Kilowatts()-tt.First20KW) / tt.First20KW; rel > 0.005 {
				t.Errorf("first20 = %.1f kW, want %.1f", rep.First20.Kilowatts(), tt.First20KW)
			}
			if rel := math.Abs(rep.Last20.Kilowatts()-tt.Last20KW) / tt.Last20KW; rel > 0.005 {
				t.Errorf("last20 = %.1f kW, want %.1f", rep.Last20.Kilowatts(), tt.Last20KW)
			}
			// Runtime within 2% of the published duration.
			if rel := math.Abs(tr.Duration()-tt.RuntimeSeconds) / tt.RuntimeSeconds; rel > 0.02 {
				t.Errorf("duration = %v, want %v", tr.Duration(), tt.RuntimeSeconds)
			}
		})
	}
}

func TestCalibratedTraceShapes(t *testing.T) {
	// The paper's qualitative claims: Colosse is flat (all three segments
	// within 0.25%), the GPU systems are steep (>20% spread).
	tr, _, err := CalibratedTrace(Colosse, 1500)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := power.Segments(tr)
	if rep.MaxSpread() > 0.004 {
		t.Errorf("Colosse spread = %v, paper says ~0.25%%", rep.MaxSpread())
	}
	for _, s := range []Spec{PizDaint, LCSC} {
		tr, _, err := CalibratedTrace(s, 1500)
		if err != nil {
			t.Fatal(err)
		}
		rep, _ := power.Segments(tr)
		if rep.MaxSpread() < 0.2 {
			t.Errorf("%s spread = %v, paper says >20%%", s.Name, rep.MaxSpread())
		}
	}
}

func TestCalibratedTraceNoTargets(t *testing.T) {
	if _, _, err := CalibratedTrace(LRZ, 100); err != ErrNoTraceTargets {
		t.Errorf("err = %v", err)
	}
}

func TestCalibratedRunsEraPlausible(t *testing.T) {
	// The HPL model behind each trace should land in the era's published
	// performance range (Rmax in GFLOPS), not just match the power table.
	ranges := map[string][2]float64{
		"colosse": {5e3, 1.2e5},   // ~77 TF era machine
		"sequoia": {1.4e7, 2.4e7}, // Sequoia+Vulcan ~17-20 PF
		// Piz Daint's Table 2 trace (833 kW core) is well below the full
		// Green500 run (1754 kW), i.e. a partial-machine or derated run,
		// so accept a correspondingly wide performance band.
		"pizdaint": {1.5e6, 7e6},
		"lcsc":     {1.5e5, 1.1e6}, // 0.59 PF (in-core HPL)
	}
	for _, s := range Table2Systems() {
		_, cal, err := CalibratedTrace(s, 600)
		if err != nil {
			t.Fatal(err)
		}
		rmax := float64(cal.Run.Rmax)
		lohi := ranges[s.Key]
		if rmax < lohi[0] || rmax > lohi[1] {
			t.Errorf("%s Rmax = %.3g GFLOPS outside era range [%.3g, %.3g]",
				s.Name, rmax, lohi[0], lohi[1])
		}
	}
}

func TestCalibrationPhysicalDecomposition(t *testing.T) {
	// The fitted baseline (idle) must be non-negative and below the core
	// average; the dynamic term positive; the warm-up within bounds.
	for _, s := range Table2Systems() {
		_, cal, err := CalibratedTrace(s, 600)
		if err != nil {
			t.Fatal(err)
		}
		if cal.IdleKW < 0 || cal.IdleKW >= s.Trace.CoreKW {
			t.Errorf("%s: fitted idle %v kW outside [0, core)", s.Name, cal.IdleKW)
		}
		if cal.DynamicKW <= 0 {
			t.Errorf("%s: fitted dynamic %v kW", s.Name, cal.DynamicKW)
		}
		if cal.Warmup < -0.5 || cal.Warmup > 0.5 {
			t.Errorf("%s: warmup %v outside solver bounds", s.Name, cal.Warmup)
		}
	}
}
