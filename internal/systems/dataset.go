package systems

import (
	"nodevar/internal/rng"
	"nodevar/internal/stats"
)

// NodeDataset generates the synthetic per-node power measurements for a
// system: MeasuredNodes near-normal draws with a few heavier-tailed
// outlier nodes (the structure visible in Figure 2), affine-calibrated so
// the sample mean and standard deviation equal the published Table 4
// values exactly. The result is deterministic in the seed.
func NodeDataset(s Spec, seed uint64) ([]float64, error) {
	if s.MeanWatts <= 0 || s.StdWatts <= 0 || s.MeasuredNodes < 2 {
		return nil, ErrNoNodeData
	}
	r := rng.New(seed)
	xs := make([]float64, s.MeasuredNodes)
	for i := range xs {
		// ~1.5% of nodes come from a 3x-wider distribution: slightly
		// leaky parts, nodes with degraded cooling, etc. Outliers are
		// clamped to ±5σ, matching the magnitudes visible in Figure 2
		// while keeping small samples from becoming heavy-tailed enough
		// to break the paper's working normality assumption.
		sigma := 1.0
		if r.Bernoulli(0.015) {
			sigma = 3
		}
		z := r.Normal(0, sigma)
		if z > 5 {
			z = 5
		}
		if z < -5 {
			z = -5
		}
		xs[i] = z
	}
	stats.MatchMoments(xs, s.MeanWatts, s.StdWatts)
	return xs, nil
}

// PilotSample returns the LRZ-style pilot subset used by the Figure 3
// bootstrap study: the first n nodes of the system's dataset. When n
// exceeds the dataset it returns the whole dataset.
func PilotSample(s Spec, seed uint64, n int) ([]float64, error) {
	xs, err := NodeDataset(s, seed)
	if err != nil {
		return nil, err
	}
	if n > 0 && n < len(xs) {
		xs = xs[:n]
	}
	return xs, nil
}
