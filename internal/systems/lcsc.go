package systems

import (
	"errors"
	"math"
	"sort"

	"nodevar/internal/rng"
	"nodevar/internal/stats"
)

// The Section 5 case study: single-node Linpack power efficiency on the
// L-CSC cluster as a function of the GPUs' programmed voltage IDs (VIDs),
// under three configurations (Figure 4):
//
//   - tuned:     774 MHz at a fixed 1.018 V for every ASIC, fans pinned low
//   - default:   900 MHz at the VID-programmed voltage, fans fast
//   - corrected: the default measurement minus the extra fan power
//
// Physical constants below are calibrated to the anchors the paper
// publishes: tuned-configuration efficiency σ ≈ 1.2%, a fan effect larger
// than 100 W, a clear negative efficiency-vs-VID trend at default
// settings, and no trend at fixed voltage.

// VIDStudyConfig configures the case study.
type VIDStudyConfig struct {
	// Nodes is the number of nodes measured (default 56).
	Nodes int
	// Seed fixes the random draws.
	Seed uint64
}

// VIDNode is one node's Figure 4 data point.
type VIDNode struct {
	// VID is the voltage (V) the GPUs' VID programs for 900 MHz. All four
	// GPUs in a node are matched to the same VID, as in the paper.
	VID float64
	// EffTuned is GFLOPS/W at 774 MHz / 1.018 V with pinned fans.
	EffTuned float64
	// EffDefault is GFLOPS/W at 900 MHz / VID voltage with fast fans.
	EffDefault float64
	// EffCorrected is EffDefault with the extra fan power subtracted.
	EffCorrected float64
}

// VIDStudy is the completed case study.
type VIDStudy struct {
	Nodes []VIDNode
	// FanDeltaWatts is the per-node fan power difference between the fast
	// and pinned-low settings.
	FanDeltaWatts float64
}

// Model constants (see package comment).
const (
	gpusPerNode    = 4
	gpuPeakGFlops  = 2530.0 // FirePro S9150 double precision at 900 MHz
	hplGPUEff      = 0.55   // fraction of GPU peak achieved by OpenCL HPL
	tunedFreqMHz   = 774.0
	tunedVolt      = 1.018
	defaultFreqMHz = 900.0
	hostWatts      = 230.0 // CPUs, DRAM, board, PSU overhead
	fanLowWatts    = 60.0
	fanHighWatts   = 190.0 // fast fans needed at 900 MHz: >100 W above low
	// dynCoeff is the GPU dynamic-power coefficient in W/(V²·MHz),
	// calibrated so the tuned node draws ~895 W and achieves ~5.3 GFLOPS/W.
	dynCoeff = 0.1886
	// Per-node variation: silicon efficiency and power spread at fixed
	// voltage, chosen so tuned-config efficiency σ/μ ≈ 1.2%.
	perfCV  = 0.008
	powerCV = 0.009
)

// vidLevels are the discrete VID voltages present in the installed ASIC
// population.
var vidLevels = []float64{1.0500, 1.0625, 1.0750, 1.0875, 1.1000, 1.1125, 1.1250, 1.1375, 1.1500}

// RunVIDStudy generates the Figure 4 dataset.
func RunVIDStudy(cfg VIDStudyConfig) (*VIDStudy, error) {
	n := cfg.Nodes
	if n == 0 {
		n = 56
	}
	if n < 4 {
		return nil, errors.New("systems: VID study needs at least 4 nodes")
	}
	r := rng.New(cfg.Seed)
	study := &VIDStudy{
		Nodes:         make([]VIDNode, n),
		FanDeltaWatts: fanHighWatts - fanLowWatts,
	}
	perfTuned := gpusPerNode * gpuPeakGFlops * hplGPUEff * (tunedFreqMHz / defaultFreqMHz)
	perfDefault := gpusPerNode * gpuPeakGFlops * hplGPUEff
	for i := range study.Nodes {
		// Draw the node's VID from a quantized normal centered mid-range;
		// the center is calibrated so the tuned-vs-default efficiency gap
		// reproduces the ~22% DVFS gain reported for L-CSC.
		vid := quantizeVID(r.Normal(1.1125, 0.018))
		// Node-specific silicon variation, independent of VID at fixed
		// voltage (the paper's surprising finding).
		perfScale := r.Normal(1, perfCV)
		powerScale := r.Normal(1, powerCV)

		pTuned := (hostWatts+dynCoeff*tunedVolt*tunedVolt*tunedFreqMHz*gpusPerNode)*powerScale +
			fanLowWatts
		pDefault := (hostWatts+dynCoeff*vid*vid*defaultFreqMHz*gpusPerNode)*powerScale +
			fanHighWatts
		study.Nodes[i] = VIDNode{
			VID:          vid,
			EffTuned:     perfTuned * perfScale / pTuned,
			EffDefault:   perfDefault * perfScale / pDefault,
			EffCorrected: perfDefault * perfScale / (pDefault - study.FanDeltaWatts),
		}
	}
	return study, nil
}

func quantizeVID(v float64) float64 {
	best := vidLevels[0]
	for _, lv := range vidLevels[1:] {
		if math.Abs(lv-v) < math.Abs(best-v) {
			best = lv
		}
	}
	return best
}

func (s *VIDStudy) column(f func(VIDNode) float64) []float64 {
	out := make([]float64, len(s.Nodes))
	for i, n := range s.Nodes {
		out[i] = f(n)
	}
	return out
}

// TunedCV returns σ/μ of the tuned-configuration efficiency — the paper
// reports 1.2%, lower than every system in Table 4.
func (s *VIDStudy) TunedCV() float64 {
	return stats.CoefficientOfVariation(s.column(func(n VIDNode) float64 { return n.EffTuned }))
}

// TunedVIDCorrelation returns r² of tuned efficiency against VID; the
// paper's surprise is that it is ≈ 0 (efficiency at fixed voltage is
// unrelated to the ASIC's VID class).
func (s *VIDStudy) TunedVIDCorrelation() float64 {
	_, _, r2 := stats.LinearFit(
		s.column(func(n VIDNode) float64 { return n.VID }),
		s.column(func(n VIDNode) float64 { return n.EffTuned }),
	)
	return r2
}

// DefaultSlope returns the least-squares slope of default-configuration
// efficiency versus VID (GFLOPS/W per volt); the paper finds a clear
// negative trend.
func (s *VIDStudy) DefaultSlope() float64 {
	slope, _, _ := stats.LinearFit(
		s.column(func(n VIDNode) float64 { return n.VID }),
		s.column(func(n VIDNode) float64 { return n.EffDefault }),
	)
	return slope
}

// CorrectedSlope returns the slope of the fan-corrected series; the paper
// notes it matches the default series' slope (the fan offset is constant).
func (s *VIDStudy) CorrectedSlope() float64 {
	slope, _, _ := stats.LinearFit(
		s.column(func(n VIDNode) float64 { return n.VID }),
		s.column(func(n VIDNode) float64 { return n.EffCorrected }),
	)
	return slope
}

// MeanTuned returns the average tuned efficiency in GFLOPS/W.
func (s *VIDStudy) MeanTuned() float64 {
	return stats.Mean(s.column(func(n VIDNode) float64 { return n.EffTuned }))
}

// MeanDefault returns the average default efficiency in GFLOPS/W.
func (s *VIDStudy) MeanDefault() float64 {
	return stats.Mean(s.column(func(n VIDNode) float64 { return n.EffDefault }))
}

// ScreenLowVID returns the indices of the k nodes with the lowest VIDs —
// the screening the paper warns could bias a submission when voltage is
// not fixed. Ties are broken by index for determinism.
func (s *VIDStudy) ScreenLowVID(k int) []int {
	if k < 0 {
		k = 0
	}
	if k > len(s.Nodes) {
		k = len(s.Nodes)
	}
	idx := make([]int, len(s.Nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Nodes[idx[a]].VID < s.Nodes[idx[b]].VID
	})
	return idx[:k]
}

// ScreeningBias returns how much higher the mean default-configuration
// efficiency of the k lowest-VID nodes is, relative to the full
// population mean.
func (s *VIDStudy) ScreeningBias(k int) float64 {
	idx := s.ScreenLowVID(k)
	if len(idx) == 0 {
		return 0
	}
	var sum float64
	for _, i := range idx {
		sum += s.Nodes[i].EffDefault
	}
	return sum/float64(len(idx))/s.MeanDefault() - 1
}
