package systems

import (
	"fmt"
	"sort"
	"strings"

	"nodevar/internal/meter"
)

// MeterPreset is a named metering architecture a site might plausibly
// submit measurements through. Presets pair the meter models in
// internal/meter with concrete parameter choices drawn from their
// source characterizations, so CLIs and the server can select a full
// instrument stack by key.
type MeterPreset struct {
	// Key selects the preset (CLI flags, API fields).
	Key string
	// Description is a one-line summary for listings.
	Description string
	// Model is the configured meter architecture.
	Model meter.Model
}

// meterPresets is the catalog. Parameter provenance:
//   - reference: the methodology's ideal 1 Hz instrument.
//   - revenue: a revenue-grade external meter — the paper cites 1-1.5%
//     equipment variance; 1% gain CV, small per-sample noise, 1 W
//     register.
//   - windowed: nvidia-smi idiom (arXiv:2312.02741): driver refreshes
//     roughly every 10 s on datacenter GPUs of that era, each value a
//     short (~1 s) boxcar average, start phase uncontrolled.
//   - occ: on-chip controller idiom (arXiv:2304.12646): 1 s read-out
//     buckets accumulated from kHz-rate internal sampling, ~1%
//     sensor-calibration systematic, ±0.5% per-reading envelope,
//     integer-ish read-out register (2 W).
var meterPresets = []MeterPreset{
	{
		Key:         "reference",
		Description: "ideal 1 Hz periodic sampler (no gain error, noise or quantization)",
		Model:       meter.Reference,
	},
	{
		Key:         "revenue",
		Description: "revenue-grade external meter: 1% gain CV, 0.2% sample noise, 1 W register, 1 Hz",
		Model: meter.Spec{
			GainErrorCV:     0.01,
			NoiseCV:         0.002,
			ResolutionWatts: 1,
			SamplePeriod:    1,
		},
	},
	{
		Key:         "windowed",
		Description: "nvidia-smi-style intermittent sampler: 10 s reads of a 1 s boxcar, jittered phase",
		Model: meter.WindowedSpec{
			Period:          10,
			Window:          1,
			PhaseJitter:     true,
			NoiseCV:         0.005,
			ResolutionWatts: 1,
		},
	},
	{
		Key:         "occ",
		Description: "on-chip controller: exact 1 s bucket accumulation, 1% calibration, ±0.5% envelope, 2 W read-out",
		Model: meter.OCCSpec{
			BucketSeconds:          1,
			GainErrorCV:            0.01,
			EnvelopeFrac:           0.005,
			ReadoutResolutionWatts: 2,
		},
	},
}

// MeterPresets returns the catalog sorted by key.
func MeterPresets() []MeterPreset {
	out := make([]MeterPreset, len(meterPresets))
	copy(out, meterPresets)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// MeterByKey finds a meter preset.
func MeterByKey(key string) (MeterPreset, error) {
	for _, p := range meterPresets {
		if p.Key == key {
			return p, nil
		}
	}
	keys := make([]string, len(meterPresets))
	for i, p := range meterPresets {
		keys[i] = p.Key
	}
	sort.Strings(keys)
	return MeterPreset{}, fmt.Errorf("systems: unknown meter preset %q (have %s)", key, strings.Join(keys, ", "))
}
