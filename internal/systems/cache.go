package systems

import (
	"sync"

	"nodevar/internal/hpl"
	"nodevar/internal/power"
)

// The calibration cache. Fitting a system trace runs thousands of
// Nelder-Mead objective evaluations, each an O(samples) grid sweep, and
// the experiment pipeline asks for the same (system, resolution) pairs
// over and over: Table 2, Figure 1, the gaming study and cmd/repro all
// calibrate the same four machines. The cache memoizes the deterministic
// fit result and deduplicates concurrent requests singleflight-style, so
// each distinct calibration runs exactly once per process.
//
// Correctness relies on two facts: the fit is a pure function of the key
// (no RNG), and the returned trace is immutable by convention (Samples()
// is documented as shared storage). Callers that need to mutate derive a
// copy via Scale/Map/WithValley, all of which allocate fresh traces.

// calKey identifies one calibration: everything CalibratedTrace's output
// depends on. The published targets and the HPL template are embedded by
// value so two specs sharing a Key but differing in configuration cannot
// collide.
type calKey struct {
	key     string
	samples int
	targets TraceTargets
	hpl     hpl.Config
}

// calEntry is one cache slot; once guards the single fit.
type calEntry struct {
	once sync.Once
	tr   *power.Trace
	cal  *Calibration
	err  error
}

var calCache sync.Map // calKey -> *calEntry

// CalibratedTrace returns the calibrated system power trace and fit
// parameters for a Table 2 system, memoized per (system, resolution).
// Concurrent callers for the same key share one fit; the returned trace
// is shared and must be treated as read-only. samples <= 1 selects the
// default resolution (2000).
func CalibratedTrace(s Spec, samples int) (*power.Trace, *Calibration, error) {
	if s.Trace == nil {
		return nil, nil, ErrNoTraceTargets
	}
	if samples <= 1 {
		samples = defaultTraceSamples
	}
	k := calKey{key: s.Key, samples: samples, targets: *s.Trace, hpl: s.HPL}
	v, _ := calCache.LoadOrStore(k, &calEntry{})
	e := v.(*calEntry)
	e.once.Do(func() {
		e.tr, e.cal, e.err = CalibratedTraceUncached(s, samples)
	})
	return e.tr, e.cal, e.err
}

// ResetCalibrationCache drops every memoized calibration. It exists for
// benchmarks and tests that need to measure or exercise the cold path.
func ResetCalibrationCache() {
	calCache.Range(func(k, _ any) bool {
		calCache.Delete(k)
		return true
	})
}
