package systems

import (
	"strconv"
	"sync"
	"time"

	"nodevar/internal/hpl"
	"nodevar/internal/obs"
	"nodevar/internal/power"
)

// Cache metrics: hits are calls served without running a fit (including
// concurrent waiters piggybacking on an in-flight one), misses are the
// calls that ran the fit.
var (
	mCalHits      = obs.NewCounter("systems.calibration_cache.hits")
	mCalMisses    = obs.NewCounter("systems.calibration_cache.misses")
	mCalResets    = obs.NewCounter("systems.calibration_cache.resets")
	mCalEvictions = obs.NewCounter("systems.calibration_cache.evictions")
	hCalFit       = obs.NewHistogram("systems.calibration.fit_seconds",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10})
)

// The calibration cache. Fitting a system trace runs thousands of
// Nelder-Mead objective evaluations, each an O(samples) grid sweep, and
// the experiment pipeline asks for the same (system, resolution) pairs
// over and over: Table 2, Figure 1, the gaming study and cmd/repro all
// calibrate the same four machines. The cache memoizes the deterministic
// fit result and deduplicates concurrent requests singleflight-style, so
// each distinct calibration runs exactly once per process.
//
// Correctness relies on two facts: the fit is a pure function of the key
// (no RNG), and the returned trace is immutable by convention (Samples()
// is documented as shared storage). Callers that need to mutate derive a
// copy via Scale/Map/WithValley, all of which allocate fresh traces.

// calKey identifies one calibration: everything CalibratedTrace's output
// depends on. The published targets and the HPL template are embedded by
// value so two specs sharing a Key but differing in configuration cannot
// collide.
type calKey struct {
	key     string
	samples int
	targets TraceTargets
	hpl     hpl.Config
}

// calEntry is one cache slot; once guards the single fit.
type calEntry struct {
	once sync.Once
	tr   *power.Trace
	cal  *Calibration
	err  error
}

var calCache sync.Map // calKey -> *calEntry

// CalibratedTrace returns the calibrated system power trace and fit
// parameters for a Table 2 system, memoized per (system, resolution).
// Concurrent callers for the same key share one fit; the returned trace
// is shared and must be treated as read-only. samples <= 1 selects the
// default resolution (2000).
func CalibratedTrace(s Spec, samples int) (*power.Trace, *Calibration, error) {
	if s.Trace == nil {
		return nil, nil, ErrNoTraceTargets
	}
	if samples <= 1 {
		samples = defaultTraceSamples
	}
	k := calKey{key: s.Key, samples: samples, targets: *s.Trace, hpl: s.HPL}
	v, _ := calCache.LoadOrStore(k, &calEntry{})
	e := v.(*calEntry)
	fitted := false
	e.once.Do(func() {
		fitted = true
		mCalMisses.Inc()
		sp := obs.T().Start("calibration", s.Key)
		sp.Attr("samples", strconv.Itoa(samples))
		t0 := time.Now()
		e.tr, e.cal, e.err = CalibratedTraceUncached(s, samples)
		hCalFit.Observe(time.Since(t0).Seconds())
		sp.End()
	})
	if !fitted {
		mCalHits.Inc()
	}
	return e.tr, e.cal, e.err
}

// ResetCalibrationCache drops every memoized calibration. It exists for
// benchmarks and tests that need to measure or exercise the cold path.
func ResetCalibrationCache() {
	mCalResets.Inc()
	calCache.Range(func(k, _ any) bool {
		calCache.Delete(k)
		mCalEvictions.Inc()
		return true
	})
}
