package methodology

import (
	"math"
	"testing"

	"nodevar/internal/power"
)

// phasedTarget builds a target whose trace includes setup (low power) and
// teardown around a flat core phase.
func phasedTarget(t *testing.T) Target {
	t.Helper()
	var system []power.Sample
	node := make([][]power.Sample, 8)
	for k := 0; k <= 1000; k++ {
		tt := float64(k)
		per := 50.0 // setup/teardown idle
		if tt >= 200 && tt <= 800 {
			per = 400 // core phase
		}
		var total float64
		for i := range node {
			node[i] = append(node[i], power.Sample{Time: tt, Power: power.Watts(per)})
			total += per
		}
		system = append(system, power.Sample{Time: tt, Power: power.Watts(total)})
	}
	sys, err := power.NewTrace(system)
	if err != nil {
		t.Fatal(err)
	}
	nodeTraces := make([]*power.Trace, len(node))
	for i := range node {
		tr, err := power.NewTrace(node[i])
		if err != nil {
			t.Fatal(err)
		}
		nodeTraces[i] = tr
	}
	return Target{
		Name:       "phased",
		TotalNodes: 8,
		System:     sys,
		NodeTrace:  func(i int) *power.Trace { return nodeTraces[i] },
		CoreLo:     200,
		CoreHi:     800,
	}
}

func TestTrueAverageUsesCoreWindow(t *testing.T) {
	target := phasedTarget(t)
	truth, err := TrueAverage(target)
	if err != nil {
		t.Fatal(err)
	}
	// Core phase only: 8 × 400 = 3200 W, not dragged down by setup.
	if math.Abs(float64(truth)-3200) > 1 {
		t.Errorf("core truth = %v, want 3200", truth)
	}
}

func TestMeasureRespectsCoreWindow(t *testing.T) {
	target := phasedTarget(t)
	// Level 3 over the core phase is exact and ignores setup/teardown.
	m, err := Measure(target, MustLevelSpec(Level3), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.WindowLo != 200 || m.WindowHi != 800 {
		t.Errorf("L3 window = [%v, %v], want core phase", m.WindowLo, m.WindowHi)
	}
	rel, err := m.RelativeError(target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel) > 1e-9 {
		t.Errorf("L3 error = %v", rel)
	}
	// Level 1 window must land inside the middle 80% of the CORE phase,
	// i.e. within [260, 740].
	for seed := uint64(0); seed < 10; seed++ {
		m, err := Measure(target, MustLevelSpec(Level1), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if m.WindowLo < 260-1e-6 || m.WindowHi > 740+1e-6 {
			t.Fatalf("L1 window [%v, %v] outside middle 80%% of core", m.WindowLo, m.WindowHi)
		}
	}
}

func TestValidateCoreWindow(t *testing.T) {
	target := phasedTarget(t)
	target.CoreLo, target.CoreHi = 800, 200
	if err := target.Validate(); err == nil {
		t.Error("inverted core window accepted")
	}
	target.CoreLo, target.CoreHi = 200, 2000
	if err := target.Validate(); err == nil {
		t.Error("core window beyond trace accepted")
	}
}
