package methodology

import (
	"math"
	"testing"

	"nodevar/internal/meter"
	"nodevar/internal/power"
)

// syntheticTarget builds a target of n nodes sampled each second over
// duration; node i draws base*(1 + spread*i/n)*shape(t) watts.
func syntheticTarget(t *testing.T, n int, duration, base, spread float64, shape func(t float64) float64) Target {
	t.Helper()
	if shape == nil {
		shape = func(float64) float64 { return 1 }
	}
	nodeTraces := make([]*power.Trace, n)
	var systemSamples []power.Sample
	steps := int(duration) + 1
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = base * (1 + spread*float64(i)/float64(n))
	}
	nodeSamples := make([][]power.Sample, n)
	for i := range nodeSamples {
		nodeSamples[i] = make([]power.Sample, 0, steps)
	}
	for k := 0; k < steps; k++ {
		tt := float64(k)
		sh := shape(tt)
		var total float64
		for i := 0; i < n; i++ {
			p := scales[i] * sh
			nodeSamples[i] = append(nodeSamples[i], power.Sample{Time: tt, Power: power.Watts(p)})
			total += p
		}
		systemSamples = append(systemSamples, power.Sample{Time: tt, Power: power.Watts(total)})
	}
	for i := range nodeTraces {
		tr, err := power.NewTrace(nodeSamples[i])
		if err != nil {
			t.Fatal(err)
		}
		nodeTraces[i] = tr
	}
	sys, err := power.NewTrace(systemSamples)
	if err != nil {
		t.Fatal(err)
	}
	return Target{
		Name:       "synthetic",
		TotalNodes: n,
		System:     sys,
		NodeTrace:  func(i int) *power.Trace { return nodeTraces[i] },
		PerfGFlops: 100000,
	}
}

func TestLevelSpecTable1(t *testing.T) {
	l1 := MustLevelSpec(Level1)
	if l1.SamplePeriod != 1 || l1.Timing != WindowInMiddle80 ||
		l1.MinNodeFraction != 1.0/64 || l1.MinMeasuredWatts != 2000 {
		t.Errorf("Level 1 spec = %+v", l1)
	}
	l2 := MustLevelSpec(Level2)
	if l2.Timing != FullRun || l2.MinNodeFraction != 1.0/8 || l2.MinMeasuredWatts != 10000 {
		t.Errorf("Level 2 spec = %+v", l2)
	}
	l3 := MustLevelSpec(Level3)
	if !l3.WholeSystem || l3.SamplePeriod != 0 || l3.Timing != FullRun {
		t.Errorf("Level 3 spec = %+v", l3)
	}
	if _, err := LevelSpec(Level(9)); err == nil {
		t.Error("unknown level accepted")
	}
	if Level1.String() != "Level 1" || Level3.String() != "Level 3" {
		t.Error("level names")
	}
}

func TestRevisedLevel1Rule(t *testing.T) {
	r := RevisedLevel1()
	if r.Timing != FullRun {
		t.Error("revised rule must require the full core phase")
	}
	if r.MinNodes != 16 || r.MinNodeFraction != 0.1 {
		t.Errorf("revised node rule = %+v", r)
	}
}

func TestRequiredNodes(t *testing.T) {
	l1 := MustLevelSpec(Level1)
	// 640 nodes at 500 W: 1/64 → 10; 2 kW floor → 4; max is 10.
	if n, err := l1.RequiredNodes(640, 500); err != nil || n != 10 {
		t.Errorf("L1 640@500 = %d, %v", n, err)
	}
	// Low-power nodes: 2 kW floor dominates (2000/90.74 → 23 > 1/64 of 640).
	if n, err := l1.RequiredNodes(640, 90.74); err != nil || n != 23 {
		t.Errorf("L1 640@90.74 = %d, %v", n, err)
	}
	l2 := MustLevelSpec(Level2)
	if n, err := l2.RequiredNodes(640, 500); err != nil || n != 80 {
		t.Errorf("L2 = %d, %v", n, err)
	}
	l3 := MustLevelSpec(Level3)
	if n, err := l3.RequiredNodes(640, 500); err != nil || n != 640 {
		t.Errorf("L3 = %d, %v", n, err)
	}
	rev := RevisedLevel1()
	if n, err := rev.RequiredNodes(100, 500); err != nil || n != 16 {
		t.Errorf("revised small system = %d, %v", n, err)
	}
	if n, err := rev.RequiredNodes(1000, 500); err != nil || n != 100 {
		t.Errorf("revised large system = %d, %v", n, err)
	}
	// Floors never exceed the system.
	if n, err := l1.RequiredNodes(3, 100); err != nil || n != 3 {
		t.Errorf("capped = %d, %v", n, err)
	}
	if _, err := l1.RequiredNodes(0, 100); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := l1.RequiredNodes(10, 0); err == nil {
		t.Error("zero node watts accepted")
	}
}

func TestWindowLength(t *testing.T) {
	l1 := MustLevelSpec(Level1)
	// 1 h core: 20% of middle 80% = 576 s > 1 min.
	if got := l1.WindowLength(3600); math.Abs(got-576) > 1e-9 {
		t.Errorf("1h window = %v", got)
	}
	// Short run: one-minute floor.
	if got := l1.WindowLength(120); got != 60 {
		t.Errorf("2min window = %v", got)
	}
	// Very short run: floor capped to the middle-80% span.
	if got := l1.WindowLength(50); math.Abs(got-40) > 1e-9 {
		t.Errorf("50s window = %v", got)
	}
	l3 := MustLevelSpec(Level3)
	if got := l3.WindowLength(3600); got != 3600 {
		t.Errorf("L3 window = %v", got)
	}
}

func TestMeasureFlatSystemAccurate(t *testing.T) {
	target := syntheticTarget(t, 128, 3600, 500, 0.05, nil)
	truth, err := TrueAverage(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{MustLevelSpec(Level1), MustLevelSpec(Level2), MustLevelSpec(Level3), RevisedLevel1()} {
		m, err := Measure(target, spec, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", spec.Level, err)
		}
		rel, err := m.RelativeError(target)
		if err != nil {
			t.Fatal(err)
		}
		// Flat workload: even Level 1 should be within the subset
		// sampling error (~ spread/sqrt(n)).
		if math.Abs(rel) > 0.02 {
			t.Errorf("%v relative error = %v (truth %v, got %v)",
				spec.Level, rel, truth, m.SystemPower)
		}
		if m.Efficiency <= 0 {
			t.Errorf("%v: efficiency not computed", spec.Level)
		}
	}
}

func TestMeasureLevel3IsExact(t *testing.T) {
	target := syntheticTarget(t, 16, 600, 400, 0.1, nil)
	m, err := Measure(target, MustLevelSpec(Level3), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.RelativeError(target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel) > 1e-9 {
		t.Errorf("Level 3 with reference meter should be exact, rel = %v", rel)
	}
	if m.NodesUsed != 16 {
		t.Errorf("Level 3 nodes used = %d", m.NodesUsed)
	}
}

// decliningShape mimics a GPU HPL tail: flat then decaying to 60%.
func decliningShape(dur float64) func(float64) float64 {
	return func(t float64) float64 {
		frac := t / dur
		if frac < 0.5 {
			return 1
		}
		return 1 - 0.8*(frac-0.5)
	}
}

func TestWindowPlacementMatters(t *testing.T) {
	const dur = 5400
	target := syntheticTarget(t, 64, dur, 300, 0.02, decliningShape(dur))
	spec := MustLevelSpec(Level1)
	get := func(p WindowPlacement) float64 {
		m, err := Measure(target, spec, Options{Placement: p, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return float64(m.SystemPower)
	}
	early := get(PlaceEarliest)
	late := get(PlaceLatest)
	best := get(PlaceBest)
	if !(early > late) {
		t.Errorf("declining run: early %v should exceed late %v", early, late)
	}
	if best > late+1e-6 {
		t.Errorf("best window %v should not exceed latest %v", best, late)
	}
	// The spread between placements exceeds 15% on this GPU-like profile —
	// the paper's headline Level 1 failure.
	truth, _ := TrueAverage(target)
	if spread := (early - best) / float64(truth); spread < 0.15 {
		t.Errorf("placement spread = %v, expected a large gaming margin", spread)
	}
}

func TestMeasureBiasLowPowerNodes(t *testing.T) {
	target := syntheticTarget(t, 64, 600, 300, 0.2, nil)
	spec := MustLevelSpec(Level1)
	honest, err := Measure(target, spec, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	biased, err := Measure(target, spec, Options{Seed: 5, BiasLowPowerNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	if biased.SystemPower >= honest.SystemPower {
		t.Errorf("biased selection %v not below honest %v", biased.SystemPower, honest.SystemPower)
	}
}

func TestMeasureWithNoisyMeter(t *testing.T) {
	target := syntheticTarget(t, 64, 1800, 450, 0.03, nil)
	m, err := Measure(target, MustLevelSpec(Level2), Options{
		Seed:  7,
		Meter: meter.Spec{GainErrorCV: 0.01, NoiseCV: 0.01, SamplePeriod: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.RelativeError(target)
	if err != nil {
		t.Fatal(err)
	}
	// Error bounded by ~3x gain error plus subset effects.
	if math.Abs(rel) > 0.05 {
		t.Errorf("noisy-meter relative error = %v", rel)
	}
}

func TestMeasureRejectsBadTargets(t *testing.T) {
	if _, err := Measure(Target{}, MustLevelSpec(Level1), Options{}); err == nil {
		t.Error("empty target accepted")
	}
	// Subset measurement without node traces.
	target := syntheticTarget(t, 640, 600, 300, 0, nil)
	target.NodeTrace = nil
	if _, err := Measure(target, MustLevelSpec(Level1), Options{}); err == nil {
		t.Error("subset measurement without node traces accepted")
	}
}

func TestBestWindowFindsMinimum(t *testing.T) {
	// Power dips in [40, 60].
	var samples []power.Sample
	for i := 0; i <= 100; i++ {
		p := 100.0
		if i >= 40 && i < 60 {
			p = 50
		}
		samples = append(samples, power.Sample{Time: float64(i), Power: power.Watts(p)})
	}
	tr, err := power.NewTrace(samples)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := BestWindow(tr, 0, 100, 20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 39 || lo > 41 {
		t.Errorf("best window starts at %v, want ~40", lo)
	}
	if _, err := BestWindow(tr, 0, 10, 20, 100); err == nil {
		t.Error("window longer than region accepted")
	}
	if _, err := BestWindow(tr, 0, 100, 0, 100); err == nil {
		t.Error("zero-length window accepted")
	}
}

func TestAnalyzeGamingOnDecliningRun(t *testing.T) {
	const dur = 5400
	target := syntheticTarget(t, 8, dur, 400, 0, decliningShape(dur))
	rep, err := AnalyzeGaming("gpu-like", target.System)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PowerReduction <= 0.05 {
		t.Errorf("gaming reduction = %v, expected substantial", rep.PowerReduction)
	}
	if rep.EfficiencyGain <= 0.05 {
		t.Errorf("efficiency gain = %v", rep.EfficiencyGain)
	}
	if rep.BestWindowAvg >= rep.TrueAvg {
		t.Errorf("best window %v not below true average %v", rep.BestWindowAvg, rep.TrueAvg)
	}
	// On a flat run there is nothing to game.
	flat := syntheticTarget(t, 8, dur, 400, 0, nil)
	repFlat, err := AnalyzeGaming("flat", flat.System)
	if err != nil {
		t.Fatal(err)
	}
	if repFlat.PowerReduction > 0.001 {
		t.Errorf("flat run gaming reduction = %v, want ~0", repFlat.PowerReduction)
	}
}

func TestRevisedRuleKillsWindowGaming(t *testing.T) {
	const dur = 5400
	target := syntheticTarget(t, 64, dur, 300, 0.02, decliningShape(dur))
	// Under the revised rule the window is the full core phase, so even a
	// deliberately "best"-placed measurement matches the truth.
	m, err := Measure(target, RevisedLevel1(), Options{Placement: PlaceBest, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := m.RelativeError(target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel) > 0.01 {
		t.Errorf("revised-rule relative error under gaming attempt = %v", rel)
	}
}

func TestSumAlignedRejectsMisaligned(t *testing.T) {
	a, _ := power.NewTrace([]power.Sample{{Time: 0, Power: 1}, {Time: 1, Power: 1}})
	b, _ := power.NewTrace([]power.Sample{{Time: 0, Power: 1}, {Time: 2, Power: 1}})
	if _, err := sumAligned([]*power.Trace{a, b}); err == nil {
		t.Error("misaligned timestamps accepted")
	}
	c, _ := power.NewTrace([]power.Sample{{Time: 0, Power: 1}})
	if _, err := sumAligned([]*power.Trace{a, c}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestOldVsRevisedNodeDelta(t *testing.T) {
	old, rev := OldVsRevisedNodeDelta(210)
	if old != 4 || rev != 21 {
		t.Errorf("210-node rules = (%d, %d), want (4, 21)", old, rev)
	}
}
