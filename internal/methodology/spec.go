// Package methodology implements the EE HPC WG power measurement
// methodology used by the Green500 and Top500 (Table 1 of the paper): the
// three quality levels with their four aspects (granularity, timing,
// machine fraction, subsystems/measurement point), a measurement executor
// that applies a level to a simulated run, the paper's revised rules, and
// the "optimal interval" gaming search of Section 3.
package methodology

import (
	"errors"
	"fmt"
	"math"

	"nodevar/internal/sampling"
)

// Level is an EE HPC WG measurement quality level.
type Level int

// The three methodology levels, in increasing quality.
const (
	Level1 Level = 1
	Level2 Level = 2
	Level3 Level = 3
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Level1:
		return "Level 1"
	case Level2:
		return "Level 2"
	case Level3:
		return "Level 3"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// TimingRule says which part of the core phase must be covered.
type TimingRule int

const (
	// WindowInMiddle80 is the original Level 1 rule: a window of at
	// least the longer of one minute or 20% of the middle 80%, placed
	// anywhere within the middle 80% of the core phase.
	WindowInMiddle80 TimingRule = iota
	// FullRun requires covering the entire core phase (Levels 2-3 — the
	// ten equally spaced averages of Level 2 are equivalent to one
	// full-run average — and the paper's revised Level 1).
	FullRun
)

// String names the timing rule.
func (t TimingRule) String() string {
	if t == FullRun {
		return "full core phase"
	}
	return "≥max(1 min, 20% of middle 80%), inside middle 80%"
}

// Spec is one row of Table 1 in executable form.
type Spec struct {
	Level Level
	// SamplePeriod is the required sampling granularity in seconds;
	// 0 means continuously integrated energy (Level 3).
	SamplePeriod float64
	// Timing is the required measurement window rule.
	Timing TimingRule
	// MinNodeFraction is the minimum fraction of compute nodes measured.
	MinNodeFraction float64
	// MinNodes is an absolute node floor (the paper's revised rule uses
	// max(16, 10%)).
	MinNodes int
	// MinMeasuredWatts is the minimum average power the measured subset
	// must draw (2 kW for Level 1, 10 kW for Level 2).
	MinMeasuredWatts float64
	// WholeSystem requires measuring every node (Level 3).
	WholeSystem bool
	// Subsystems documents aspect 3 and PointOfMeasurement aspect 4;
	// informative strings carried into reports.
	Subsystems         string
	PointOfMeasurement string
}

// LevelSpec returns the original EE HPC WG spec for a level, as
// summarized in Table 1.
func LevelSpec(l Level) (Spec, error) {
	switch l {
	case Level1:
		return Spec{
			Level:              Level1,
			SamplePeriod:       1,
			Timing:             WindowInMiddle80,
			MinNodeFraction:    1.0 / 64,
			MinMeasuredWatts:   2000,
			Subsystems:         "compute nodes only",
			PointOfMeasurement: "upstream of power conversion, or modeled with manufacturer data",
		}, nil
	case Level2:
		return Spec{
			Level:              Level2,
			SamplePeriod:       1,
			Timing:             FullRun,
			MinNodeFraction:    1.0 / 8,
			MinMeasuredWatts:   10000,
			Subsystems:         "all participating subsystems, measured or estimated",
			PointOfMeasurement: "upstream of power conversion, or modeled with off-line measurements",
		}, nil
	case Level3:
		return Spec{
			Level:              Level3,
			SamplePeriod:       0, // continuously integrated energy
			Timing:             FullRun,
			MinNodeFraction:    1,
			WholeSystem:        true,
			Subsystems:         "all participating subsystems, measured",
			PointOfMeasurement: "upstream of power conversion, or conversion loss measured simultaneously",
		}, nil
	default:
		return Spec{}, fmt.Errorf("methodology: unknown level %d", int(l))
	}
}

// MustLevelSpec is LevelSpec for the three known levels; it panics
// otherwise.
func MustLevelSpec(l Level) Spec {
	s, err := LevelSpec(l)
	if err != nil {
		panic(err)
	}
	return s
}

// RevisedLevel1 returns the paper's proposed replacement for Level 1
// (Section 6, adopted by the Green500/Top500 for late 2015): measure the
// full core phase on at least max(16 nodes, 10% of the system), keeping
// the 1 Hz granularity and 2 kW floor.
func RevisedLevel1() Spec {
	return Spec{
		Level:              Level1,
		SamplePeriod:       1,
		Timing:             FullRun,
		MinNodeFraction:    0.1,
		MinNodes:           16,
		MinMeasuredWatts:   2000,
		Subsystems:         "compute nodes only",
		PointOfMeasurement: "upstream of power conversion, or modeled with manufacturer data",
	}
}

// RequiredNodes returns how many nodes the spec requires for a system of
// totalNodes nodes whose average per-node power is approximately
// nodeWatts (used for the minimum-power floor). It returns an error for
// non-positive inputs.
func (s Spec) RequiredNodes(totalNodes int, nodeWatts float64) (int, error) {
	if totalNodes <= 0 {
		return 0, errors.New("methodology: totalNodes must be positive")
	}
	if nodeWatts <= 0 {
		return 0, errors.New("methodology: nodeWatts must be positive")
	}
	if s.WholeSystem {
		return totalNodes, nil
	}
	n := int(math.Ceil(s.MinNodeFraction*float64(totalNodes) - 1e-9))
	if n < 1 {
		n = 1
	}
	if s.MinNodes > n {
		n = s.MinNodes
	}
	if s.MinMeasuredWatts > 0 {
		if floor := int(math.Ceil(s.MinMeasuredWatts / nodeWatts)); floor > n {
			n = floor
		}
	}
	if n > totalNodes {
		n = totalNodes
	}
	return n, nil
}

// WindowLength returns the minimum measurement window length in seconds
// for a core phase of the given duration.
func (s Spec) WindowLength(coreDuration float64) float64 {
	if s.Timing == FullRun {
		return coreDuration
	}
	min20 := 0.2 * (0.8 * coreDuration)
	if min20 < 60 {
		min20 = 60
	}
	if min20 > 0.8*coreDuration {
		min20 = 0.8 * coreDuration
	}
	return min20
}

// OldVsRevisedNodeDelta compares the 1/64 rule with the paper's revised
// rule for a given system size, returning (old, revised).
func OldVsRevisedNodeDelta(totalNodes int) (old, revised int) {
	return sampling.Level1Nodes(totalNodes), sampling.RevisedRuleNodes(totalNodes)
}
