package methodology

import (
	"math"
	"strings"
	"testing"

	"nodevar/internal/power"
	"nodevar/internal/stats"
)

func TestAssessSubsetMeasurement(t *testing.T) {
	target := syntheticTarget(t, 640, 1800, 400, 0.05, nil)
	m, err := Measure(target, MustLevelSpec(Level1), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess(m, target, 0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a.SubsetAccuracy <= 0 || a.SubsetAccuracy > 0.1 {
		t.Errorf("subset accuracy = %v", a.SubsetAccuracy)
	}
	if a.TimeBiasBounded {
		t.Error("Level 1 window should not be marked bias-free")
	}
	if a.WindowFraction <= 0 || a.WindowFraction >= 0.5 {
		t.Errorf("window fraction = %v", a.WindowFraction)
	}
	if !strings.Contains(a.String(), "window bias unbounded") {
		t.Errorf("statement = %q", a.String())
	}
}

func TestAssessFullSystemFullRun(t *testing.T) {
	target := syntheticTarget(t, 16, 600, 400, 0.05, nil)
	m, err := Measure(target, MustLevelSpec(Level3), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess(m, target, 0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a.SubsetAccuracy != 0 {
		t.Errorf("whole-system accuracy = %v", a.SubsetAccuracy)
	}
	if !a.TimeBiasBounded {
		t.Error("full-run measurement should be bias-bounded")
	}
	if !strings.Contains(a.String(), "no window bias") {
		t.Errorf("statement = %q", a.String())
	}
}

func TestAssessGamedWindowFlagged(t *testing.T) {
	const dur = 5400
	target := syntheticTarget(t, 64, dur, 300, 0.02, decliningShape(dur))
	m, err := Measure(target, MustLevelSpec(Level1), Options{Placement: PlaceBest, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess(m, target, 0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range a.Notes {
		if strings.Contains(n, "optimized") {
			found = true
		}
	}
	if !found {
		t.Errorf("gamed window not flagged: %+v", a)
	}
}

func TestAssessErrors(t *testing.T) {
	target := syntheticTarget(t, 16, 600, 400, 0.05, nil)
	m, err := Measure(target, MustLevelSpec(Level3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assess(nil, target, 0.02, 0.95); err == nil {
		t.Error("nil measurement accepted")
	}
	if _, err := Assess(m, target, 0, 0.95); err == nil {
		t.Error("zero CV accepted")
	}
	if _, err := Assess(m, target, 0.02, 1.5); err == nil {
		t.Error("bad confidence accepted")
	}
}

func TestTenSegmentAverageEqualsFullAverage(t *testing.T) {
	// On any trace, the mean of ten equal segment averages equals the
	// full time-weighted average — which is why Level 2's rule covers
	// the whole run.
	const dur = 5400
	target := syntheticTarget(t, 4, dur, 300, 0.1, decliningShape(dur))
	full, err := target.System.Average()
	if err != nil {
		t.Fatal(err)
	}
	ten, segs, err := TenSegmentAverage(target.System)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 10 {
		t.Fatalf("segments = %d", len(segs))
	}
	if math.Abs(float64(ten-full))/float64(full) > 1e-9 {
		t.Errorf("ten-segment %v vs full %v", ten, full)
	}
	// On a declining trace the segments themselves decline.
	if segs[0] <= segs[9] {
		t.Errorf("segments not declining: %v ... %v", segs[0], segs[9])
	}
}

func TestTenSegmentAverageErrors(t *testing.T) {
	if _, _, err := TenSegmentAverage(nil); err == nil {
		t.Error("nil trace accepted")
	}
	short, _ := power.NewTrace([]power.Sample{{Time: 0, Power: 1}})
	if _, _, err := TenSegmentAverage(short); err == nil {
		t.Error("single-sample trace accepted")
	}
}

func TestWithCompleteness(t *testing.T) {
	base := Assessment{Confidence: 0.95, SubsetAccuracy: 0.02, TimeBiasBounded: true}
	clean := base.String()

	// Complete (or unassessed) data leaves the assessment — and its
	// rendering — untouched, so fault-free output stays byte-identical.
	for _, c := range []float64{1, 1.5, 0, -0.1} {
		got := base.WithCompleteness(c)
		if got.Degraded || got.String() != clean {
			t.Errorf("WithCompleteness(%v) changed a complete assessment: %+v", c, got)
		}
	}

	deg := base.WithCompleteness(0.93)
	if !deg.Degraded || deg.DataCompleteness != 0.93 {
		t.Fatalf("degraded assessment: %+v", deg)
	}
	s := deg.String()
	if !strings.Contains(s, "DEGRADED") || !strings.Contains(s, "93.0%") {
		t.Errorf("degraded rendering %q", s)
	}
	if !strings.Contains(s, "lower bound") {
		t.Errorf("degraded rendering %q missing the lower-bound caveat", s)
	}
	if base.Degraded {
		t.Error("WithCompleteness mutated its receiver")
	}
}

// TestWithSubsetInterval covers the degraded conversion point for
// fault-tolerant pipelines: a healthy interval fills SubsetAccuracy,
// while a zero-center interval (best-effort aggregation with every node
// lost) flags the assessment degraded instead of panicking.
func TestWithSubsetInterval(t *testing.T) {
	base := Assessment{Confidence: 0.95, TimeBiasBounded: true}

	a := base.WithSubsetInterval(stats.Interval{Center: 1000, HalfWidth: 15, Confidence: 0.95})
	if a.Degraded || a.SubsetAccuracy != 0.015 {
		t.Errorf("healthy interval: %+v", a)
	}

	a = base.WithSubsetInterval(stats.Interval{Center: 0, HalfWidth: 15, Confidence: 0.95})
	if !a.Degraded || a.SubsetAccuracy != 0 {
		t.Errorf("zero-center interval not flagged degraded: %+v", a)
	}
	if len(a.Notes) == 0 || !strings.Contains(a.String(), "relative accuracy undefined") {
		t.Errorf("zero-center interval note missing: %q", a.String())
	}
}
