package methodology

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: Level 3 with a reference instrument reproduces the true
// average exactly, for any synthetic target.
func TestQuickLevel3Exact(t *testing.T) {
	f := func(nRaw, baseRaw, spreadRaw uint8) bool {
		n := 2 + int(nRaw%30)
		base := 100 + float64(baseRaw)
		spread := float64(spreadRaw%50) / 100
		target := syntheticTarget(t, n, 300, base, spread, nil)
		m, err := Measure(target, MustLevelSpec(Level3), Options{Seed: uint64(nRaw)})
		if err != nil {
			return false
		}
		rel, err := m.RelativeError(target)
		if err != nil {
			return false
		}
		return math.Abs(rel) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the reported system power is exactly the subset average
// scaled by N/n (the methodology's linear extrapolation).
func TestQuickLinearExtrapolation(t *testing.T) {
	target := syntheticTarget(t, 128, 600, 300, 0.1, nil)
	f := func(seed uint16) bool {
		m, err := Measure(target, MustLevelSpec(Level1), Options{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		want := float64(m.SubsetAvg) * 128 / float64(m.NodesUsed)
		return math.Abs(float64(m.SystemPower)-want) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: for any placement, a Level 1 window lies within the middle
// 80% of the core phase and has the spec's length.
func TestQuickWindowWithinMiddle80(t *testing.T) {
	const dur = 5400
	target := syntheticTarget(t, 16, dur, 300, 0.05, decliningShape(dur))
	spec := MustLevelSpec(Level1)
	wantLen := spec.WindowLength(dur)
	placements := []WindowPlacement{PlaceRandom, PlaceEarliest, PlaceLatest, PlaceCenter, PlaceBest}
	f := func(seed uint16, pRaw uint8) bool {
		p := placements[int(pRaw)%len(placements)]
		m, err := Measure(target, spec, Options{Seed: uint64(seed), Placement: p})
		if err != nil {
			return false
		}
		if math.Abs((m.WindowHi-m.WindowLo)-wantLen) > 1e-6 {
			return false
		}
		return m.WindowLo >= 0.1*dur-1e-6 && m.WindowHi <= 0.9*dur+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: gaming can never make the best window exceed the worst
// window; the gamed value is a lower bound over placements.
func TestQuickBestPlacementIsMinimal(t *testing.T) {
	const dur = 5400
	target := syntheticTarget(t, 16, dur, 300, 0.05, decliningShape(dur))
	spec := MustLevelSpec(Level1)
	best, err := Measure(target, spec, Options{Placement: PlaceBest, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint16) bool {
		m, err := Measure(target, spec, Options{Placement: PlaceRandom, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		// Identical subsets are not guaranteed; compare subset-average
		// normalized to per-node power to remove subset composition noise
		// up to the node spread (5%), with slack.
		return float64(m.SystemPower) > float64(best.SystemPower)*0.97
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
