package methodology

import (
	"errors"
	"fmt"

	"nodevar/internal/meter"
	"nodevar/internal/power"
	"nodevar/internal/rng"
	"nodevar/internal/sampling"
	"nodevar/internal/stats"
)

// This file quantifies what the metering architecture does to the
// methodology's outputs. The paper's Level 1/2/3 verdicts and Table-5
// sample sizes were all derived under one meter idiom — a calibrated
// periodic point sampler. CompareMeters re-runs the same assessment
// through other architectures (intermittent windowed sampling, on-chip
// accumulation) against a shared ground truth and reports the shift:
// how far each level's reported system power moves, and how the
// recommended sample size changes when the pilot CV itself is measured
// through a distorting instrument.

// NamedModel pairs a meter model with a preset/display name.
type NamedModel struct {
	Name  string
	Model meter.Model
}

// DistortionConfig configures a meter-model comparison.
type DistortionConfig struct {
	// Confidence and Accuracy parameterize the Table-5 sample-size
	// recommendation recomputed from each model's measured pilot
	// (defaults 0.95 and 0.01 — the paper's 95%, λ=1%).
	Confidence float64
	Accuracy   float64
	// PilotNodes is the pilot subset size for the sample-size phase
	// (default 48, capped at the system size).
	PilotNodes int
	// Seed fixes the pilot subset, window placement and every
	// instrument draw.
	Seed uint64
}

func (c *DistortionConfig) fill() {
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Accuracy == 0 {
		c.Accuracy = 0.01
	}
	if c.PilotNodes == 0 {
		c.PilotNodes = 48
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
}

// LevelDistortion is one level's verdict under one meter model.
type LevelDistortion struct {
	Level Level
	// SystemPower is the reported whole-system power.
	SystemPower power.Watts
	// ErrVsTruth is the signed relative error against the ground-truth
	// core-phase average.
	ErrVsTruth float64
	// ShiftVsReference is the signed relative shift against the
	// Reference meter's report for the same level, seed and subset —
	// the distortion attributable to metering architecture alone.
	ShiftVsReference float64
}

// ModelDistortion is one meter model's full assessment.
type ModelDistortion struct {
	// Name is the preset name; Architecture the meter.Model name.
	Name         string
	Architecture string
	// Levels holds the three level verdicts.
	Levels []LevelDistortion
	// MeasuredCV is the pilot per-node power CV as seen through this
	// model's instruments.
	MeasuredCV float64
	// SampleSize is the Table-5 style two-phase recommendation computed
	// from the measured pilot; SampleSizeDelta is the difference vs the
	// Reference meter's recommendation (positive: the distorted CV
	// demands more nodes).
	SampleSize      int
	SampleSizeDelta int
}

// DistortionReport compares meter models on one target.
type DistortionReport struct {
	System     string
	TrueAvg    power.Watts
	Seed       uint64
	Confidence float64
	Accuracy   float64
	PilotNodes int
	// Reference is the periodic Reference-meter baseline every shift is
	// relative to; Models are the compared architectures.
	Reference ModelDistortion
	Models    []ModelDistortion
}

// distortionLevels are the specs each model is assessed under.
func distortionLevels() []Spec {
	return []Spec{MustLevelSpec(Level1), MustLevelSpec(Level2), MustLevelSpec(Level3)}
}

// CompareMeters runs the Level 1/2/3 assessment and the pilot-based
// sample-size recommendation under each model and reports the shifts
// against the Reference meter. The pilot subset, window placement and
// node subsets are shared across models (same seed, and instrument
// randomness lives on a derived stream), so every reported shift is
// attributable to the metering architecture. Deterministic: same
// target, models and config — same report.
func CompareMeters(t Target, models []NamedModel, cfg DistortionConfig) (*DistortionReport, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.NodeTrace == nil {
		return nil, errors.New("methodology: meter comparison needs per-node traces for the pilot phase")
	}
	if len(models) == 0 {
		return nil, errors.New("methodology: no meter models to compare")
	}
	cfg.fill()
	truth, err := TrueAverage(t)
	if err != nil {
		return nil, err
	}

	// Pilot subset: drawn once, shared by every model.
	pilotN := cfg.PilotNodes
	if pilotN > t.TotalNodes {
		pilotN = t.TotalNodes
	}
	if pilotN < 2 {
		return nil, fmt.Errorf("methodology: pilot of %d nodes is too small", pilotN)
	}
	pilotIdx := rng.New(cfg.Seed).SampleWithoutReplacement(t.TotalNodes, pilotN)

	rep := &DistortionReport{
		System:     t.Name,
		TrueAvg:    truth,
		Seed:       cfg.Seed,
		Confidence: cfg.Confidence,
		Accuracy:   cfg.Accuracy,
		PilotNodes: pilotN,
	}

	// Reference baseline: nil Model selects the periodic Reference spec.
	ref, err := assessModel(t, "reference", nil, pilotIdx, cfg, float64(truth), nil)
	if err != nil {
		return nil, err
	}
	rep.Reference = *ref

	for _, nm := range models {
		if nm.Model == nil {
			return nil, fmt.Errorf("methodology: model %q is nil", nm.Name)
		}
		if err := nm.Model.Validate(); err != nil {
			return nil, fmt.Errorf("methodology: model %q: %w", nm.Name, err)
		}
		md, err := assessModel(t, nm.Name, nm.Model, pilotIdx, cfg, float64(truth), ref)
		if err != nil {
			return nil, fmt.Errorf("methodology: model %q: %w", nm.Name, err)
		}
		rep.Models = append(rep.Models, *md)
	}
	return rep, nil
}

// assessModel runs the three levels and the pilot phase under one model.
// ref is nil when assessing the reference baseline itself.
func assessModel(t Target, name string, model meter.Model, pilotIdx []int, cfg DistortionConfig, truth float64, ref *ModelDistortion) (*ModelDistortion, error) {
	md := &ModelDistortion{Name: name, Architecture: "periodic"}
	if model != nil {
		md.Architecture = model.ModelName()
	}

	for li, spec := range distortionLevels() {
		m, err := Measure(t, spec, Options{
			Placement: PlaceCenter,
			Model:     model,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", spec.Level, err)
		}
		ld := LevelDistortion{
			Level:       spec.Level,
			SystemPower: m.SystemPower,
			ErrVsTruth:  (float64(m.SystemPower) - truth) / truth,
		}
		if ref != nil {
			refPower := float64(ref.Levels[li].SystemPower)
			if refPower != 0 {
				ld.ShiftVsReference = (float64(m.SystemPower) - refPower) / refPower
			}
		}
		md.Levels = append(md.Levels, ld)
	}

	// Pilot phase: measure each pilot node's average power through a
	// per-node instrument drawn from one model-scoped stream, then
	// recompute the two-phase sample size from the measured values. A
	// distorting meter changes the apparent CV, and with it the number
	// of nodes Table 5 tells a site to measure.
	lo, hi := t.coreWindow()
	instR := rng.New(cfg.Seed ^ 0x70696c6f74)
	measured := make([]float64, len(pilotIdx))
	for i, node := range pilotIdx {
		var inst meter.Sampler
		var err error
		if model != nil {
			inst, err = model.NewInstrument(instR)
		} else {
			inst, err = meter.New(meter.Reference, instR)
		}
		if err != nil {
			return nil, err
		}
		avg, err := inst.AveragePower(t.NodeTrace(node), lo, hi)
		if err != nil {
			return nil, fmt.Errorf("pilot node %d: %w", node, err)
		}
		measured[i] = float64(avg)
	}
	mean, sd := stats.MeanStdDev(measured)
	if mean <= 0 {
		return nil, errors.New("pilot mean power is non-positive")
	}
	md.MeasuredCV = sd / mean
	n, err := sampling.TwoPhase(measured, cfg.Confidence, cfg.Accuracy, t.TotalNodes)
	if err != nil {
		return nil, fmt.Errorf("sample size: %w", err)
	}
	md.SampleSize = n
	if ref != nil {
		md.SampleSizeDelta = n - ref.SampleSize
	}
	return md, nil
}
