package methodology

import (
	"errors"
	"fmt"
	"strings"

	"nodevar/internal/power"
	"nodevar/internal/sampling"
	"nodevar/internal/stats"
)

// Assessment is the measurement-accuracy statement the paper recommends
// every submission carry ("We also recommend that all submissions
// include an assessment of their measurement accuracy", Section 6).
type Assessment struct {
	// Confidence is the confidence level of the statement.
	Confidence float64
	// SubsetAccuracy is the relative half-width of the node-subset
	// extrapolation (Equation 1 with finite population correction).
	SubsetAccuracy float64
	// WindowFraction is the fraction of the core phase covered by the
	// measurement window.
	WindowFraction float64
	// TimeBiasBounded reports whether the window covered the full core
	// phase, making time-variation bias zero by construction.
	TimeBiasBounded bool
	// DataCompleteness is the fraction of expected measurement data that
	// actually arrived (1 when every sample, instrument and node
	// reported; see internal/faults). Zero means "not assessed".
	DataCompleteness float64
	// Degraded reports that the measurement lost data — gaps, meter
	// dropouts or node outages — and the stated accuracy is therefore a
	// lower bound on the true uncertainty.
	Degraded bool
	// Notes carries human-readable caveats.
	Notes []string
}

// WithCompleteness returns the assessment annotated with the observed
// data completeness. Anything below 1 marks the assessment degraded; a
// complete measurement is returned unchanged, so fault-free renderings
// stay byte-identical.
func (a Assessment) WithCompleteness(completeness float64) Assessment {
	if completeness >= 1 || completeness <= 0 {
		return a
	}
	a.DataCompleteness = completeness
	a.Degraded = true
	return a
}

// WithSubsetInterval fills SubsetAccuracy from a measured extrapolation
// interval instead of a planned CV. A zero-center interval — which
// best-effort aggregation over dropped nodes or meters can produce — is
// not a 0% error: the relative accuracy is undefined, so the assessment
// is flagged degraded with a note instead of panicking the way
// stats.Interval.RelativeHalfWidth would.
func (a Assessment) WithSubsetInterval(ci stats.Interval) Assessment {
	if rel, ok := ci.RelativeHalfWidthOK(); ok {
		a.SubsetAccuracy = rel
		return a
	}
	a.Degraded = true
	a.Notes = append(a.Notes, "zero-power point estimate: relative accuracy undefined")
	return a
}

// String renders the accuracy statement.
func (a Assessment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "±%.2f%% subset accuracy at %.0f%% confidence",
		a.SubsetAccuracy*100, a.Confidence*100)
	if a.TimeBiasBounded {
		b.WriteString("; full core phase measured (no window bias)")
	} else {
		fmt.Fprintf(&b, "; only %.0f%% of the core phase measured (window bias unbounded)",
			a.WindowFraction*100)
	}
	if a.Degraded {
		fmt.Fprintf(&b, "; DEGRADED: only %.1f%% of expected data observed — accuracy is a lower bound",
			a.DataCompleteness*100)
	}
	for _, n := range a.Notes {
		b.WriteString("; ")
		b.WriteString(n)
	}
	return b.String()
}

// Assess produces the accuracy statement for a measurement, given the
// machine's (estimated) per-node coefficient of variation.
func Assess(m *Measurement, t Target, nodeCV, confidence float64) (Assessment, error) {
	if m == nil {
		return Assessment{}, errors.New("methodology: nil measurement")
	}
	if err := t.Validate(); err != nil {
		return Assessment{}, err
	}
	if nodeCV <= 0 {
		return Assessment{}, errors.New("methodology: nodeCV must be positive")
	}
	if !(confidence > 0 && confidence < 1) {
		return Assessment{}, errors.New("methodology: confidence must be in (0, 1)")
	}
	a := Assessment{Confidence: confidence}

	// Subset accuracy via the paper's machinery.
	if m.NodesUsed >= t.TotalNodes {
		a.SubsetAccuracy = 0
		a.Notes = append(a.Notes, "whole system measured")
	} else if m.NodesUsed >= 2 {
		plan := sampling.Plan{
			Confidence: confidence,
			Accuracy:   0.01, // placeholder; ExpectedAccuracy ignores it
			CV:         nodeCV,
			Population: t.TotalNodes,
		}
		acc, err := plan.ExpectedAccuracy(m.NodesUsed)
		if err != nil {
			return Assessment{}, err
		}
		a.SubsetAccuracy = acc
	} else {
		a.Notes = append(a.Notes, "single-node subset: no variance estimate possible")
		a.SubsetAccuracy = nodeCV * 10 // effectively unbounded; flag loudly
	}

	// Window coverage, relative to the core phase.
	coreLo, coreHi := t.coreWindow()
	if core := coreHi - coreLo; core > 0 {
		a.WindowFraction = (m.WindowHi - m.WindowLo) / core
	}
	a.TimeBiasBounded = a.WindowFraction >= 1-1e-9
	if !a.TimeBiasBounded && m.Placement == PlaceBest {
		a.Notes = append(a.Notes, "window was optimized; treat the value as a lower bound")
	}
	return a, nil
}

// TenSegmentAverage implements Level 2's literal timing rule: "ten
// equally spaced power averaged measurements spanning the full run". It
// returns the mean of the ten segment averages, which for equal segments
// equals the full-run time-weighted average.
func TenSegmentAverage(tr *power.Trace) (power.Watts, []power.Watts, error) {
	if tr == nil || tr.Len() < 2 {
		return 0, nil, errors.New("methodology: ten-segment average needs a trace")
	}
	start, end := tr.Start(), tr.End()
	segs := make([]power.Watts, 10)
	var sum float64
	for i := 0; i < 10; i++ {
		lo := start + (end-start)*float64(i)/10
		hi := start + (end-start)*float64(i+1)/10
		avg, err := tr.AverageBetween(lo, hi)
		if err != nil {
			return 0, nil, err
		}
		segs[i] = avg
		sum += float64(avg)
	}
	return power.Watts(sum / 10), segs, nil
}
