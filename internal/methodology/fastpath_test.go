package methodology

import (
	"testing"

	"nodevar/internal/cluster"
	"nodevar/internal/rng"
)

// steadyLoad is a constant-utilization workload for fast-path tests.
type steadyLoad struct{ dur, util float64 }

func (l steadyLoad) CoreDuration() float64       { return l.dur }
func (l steadyLoad) Utilization(float64) float64 { return l.util }

func fastPathTargets(t *testing.T) (slow, fast Target) {
	t.Helper()
	model := cluster.NodeModel{
		IdleWatts:        150,
		DynamicWatts:     250,
		ThermalTau:       120,
		TempRiseIdle:     10,
		TempRiseLoad:     45,
		LeakagePerDegree: 0.001,
		Fan:              cluster.NewAutoFan(15, 120, 30, 70),
		PSU:              cluster.PSUModel{RatedWatts: 800, PeakEff: 0.94, LowLoadEff: 0.8, Knee: 0.3},
	}
	variation := cluster.Variation{IdleCV: 0.01, DynamicCV: 0.025, FanCV: 0.05, OutlierFraction: 0.01}
	c, err := cluster.New("fastpath", 96, model, variation, 22, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(c, steadyLoad{dur: 1200, util: 0.8}, cluster.RunOptions{SamplePeriod: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow = Target{
		Name:       "fastpath",
		TotalNodes: 96,
		System:     res.System,
		NodeTrace:  res.NodeTrace,
		PerfGFlops: 1000,
	}
	fast = slow
	fast.SubsetTrace = res.SubsetTraceBetween
	fast.NodeAvg = res.NodeTraceAverage
	return slow, fast
}

// TestMeasureFastPathsBitIdentical checks that the SubsetTrace/NodeAvg
// fast paths change nothing observable: every reported field matches the
// per-node-trace reference implementation bit for bit, across specs,
// placements and biased subset selection.
func TestMeasureFastPathsBitIdentical(t *testing.T) {
	slow, fast := fastPathTargets(t)
	specs := []Spec{
		MustLevelSpec(Level1),
		MustLevelSpec(Level2),
		RevisedLevel1(),
	}
	for _, spec := range specs {
		for _, bias := range []bool{false, true} {
			for seed := uint64(0); seed < 8; seed++ {
				opts := Options{Seed: seed, BiasLowPowerNodes: bias}
				a, err := Measure(slow, spec, opts)
				if err != nil {
					t.Fatal(err)
				}
				b, err := Measure(fast, spec, opts)
				if err != nil {
					t.Fatal(err)
				}
				if a.WindowLo != b.WindowLo || a.WindowHi != b.WindowHi {
					t.Fatalf("%s bias=%v seed=%d: windows differ: [%v,%v] vs [%v,%v]",
						spec.Level, bias, seed, a.WindowLo, a.WindowHi, b.WindowLo, b.WindowHi)
				}
				if len(a.NodeIndex) != len(b.NodeIndex) {
					t.Fatalf("%s bias=%v seed=%d: subset sizes differ", spec.Level, bias, seed)
				}
				for i := range a.NodeIndex {
					if a.NodeIndex[i] != b.NodeIndex[i] {
						t.Fatalf("%s bias=%v seed=%d: subsets differ: %v vs %v",
							spec.Level, bias, seed, a.NodeIndex, b.NodeIndex)
					}
				}
				if a.SubsetAvg != b.SubsetAvg || a.SystemPower != b.SystemPower ||
					a.Energy != b.Energy || a.Efficiency != b.Efficiency {
					t.Fatalf("%s bias=%v seed=%d: reported values differ:\nslow %+v\nfast %+v",
						spec.Level, bias, seed, a, b)
				}
			}
		}
	}
}
