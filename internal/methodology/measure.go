package methodology

import (
	"errors"
	"fmt"

	"nodevar/internal/meter"
	"nodevar/internal/power"
	"nodevar/internal/rng"
)

// Target is the system under measurement: the ground-truth traces a
// simulated run produced. NodeTrace may be nil when only whole-system
// measurements are needed.
type Target struct {
	// Name identifies the system.
	Name string
	// TotalNodes is the number of compute nodes that participated.
	TotalNodes int
	// System is the true whole-system power trace over the core phase.
	System *power.Trace
	// NodeTrace returns the true power trace of one node (indices
	// 0..TotalNodes-1).
	NodeTrace func(i int) *power.Trace
	// SubsetTrace, when non-nil, returns the summed true trace of a node
	// subset covering at least [lo, hi]. Reads within the window must be
	// identical to reads on the sum of the NodeTrace outputs in idx order;
	// providers that keep compact per-tick state (cluster.RunResult)
	// implement it without materializing per-node traces and restrict the
	// computed ticks to the window.
	SubsetTrace func(idx []int, lo, hi float64) (*power.Trace, error)
	// NodeAvg, when non-nil, returns node i's true time-averaged power and
	// must equal NodeTrace(i).Average(). It lets biased subset selection
	// rank nodes without building every node trace.
	NodeAvg func(i int) float64
	// PerfGFlops is the benchmark performance credited to the run (for
	// FLOPS/W efficiency).
	PerfGFlops float64
	// CoreLo and CoreHi bound the benchmark's core phase within the
	// traces, for runs recorded with setup and teardown included. Both
	// zero means the traces span exactly the core phase.
	CoreLo, CoreHi float64
}

// coreWindow returns the absolute core-phase bounds within the traces.
func (t Target) coreWindow() (lo, hi float64) {
	if t.CoreHi > t.CoreLo {
		return t.CoreLo, t.CoreHi
	}
	return t.System.Start(), t.System.End()
}

// Validate checks the target.
func (t Target) Validate() error {
	switch {
	case t.TotalNodes <= 0:
		return errors.New("methodology: target needs TotalNodes > 0")
	case t.System == nil || t.System.Len() < 2:
		return errors.New("methodology: target needs a system trace")
	case t.CoreHi < t.CoreLo:
		return errors.New("methodology: core window inverted")
	}
	if t.CoreHi > t.CoreLo {
		if t.CoreLo < t.System.Start()-1e-9 || t.CoreHi > t.System.End()+1e-9 {
			return errors.New("methodology: core window outside the trace span")
		}
	}
	return nil
}

// WindowPlacement says where a sub-run measurement window is placed.
type WindowPlacement int

const (
	// PlaceRandom places the window uniformly at random in the allowed
	// region (an honest Level 1 measurement).
	PlaceRandom WindowPlacement = iota
	// PlaceEarliest starts the window at the earliest allowed time.
	PlaceEarliest
	// PlaceLatest ends the window at the latest allowed time.
	PlaceLatest
	// PlaceCenter centers the window on the core phase.
	PlaceCenter
	// PlaceBest searches for the window with the lowest average power —
	// the "optimal time interval" gaming of TSUBAME-KFC and L-CSC.
	PlaceBest
)

// String names the placement.
func (p WindowPlacement) String() string {
	switch p {
	case PlaceRandom:
		return "random"
	case PlaceEarliest:
		return "earliest"
	case PlaceLatest:
		return "latest"
	case PlaceCenter:
		return "center"
	case PlaceBest:
		return "best (gamed)"
	default:
		return fmt.Sprintf("WindowPlacement(%d)", int(p))
	}
}

// Options configures one measurement.
type Options struct {
	// Placement positions the window when the spec does not require the
	// full run.
	Placement WindowPlacement
	// Meter is the instrument spec (default meter.Reference).
	Meter meter.Spec
	// Model, when non-nil, selects the metering architecture and
	// overrides Meter. The model's own cadence (read period, read-out
	// bucket) governs sampling — the level spec's SamplePeriod is not
	// imposed on it, because that gap is exactly the distortion the
	// model comparison quantifies.
	Model meter.Model
	// BiasLowPowerNodes selects the lowest-power nodes instead of a
	// random subset — the VID-screening gaming described in Section 5.
	BiasLowPowerNodes bool
	// Seed fixes instrument calibration, subset choice and window
	// placement.
	Seed uint64
}

// Measurement is the outcome of applying a spec to a target.
type Measurement struct {
	System    string
	Spec      Spec
	Placement WindowPlacement
	WindowLo  float64
	WindowHi  float64
	NodesUsed int
	NodeIndex []int
	// SubsetAvg is the measured average power of the node subset.
	SubsetAvg power.Watts
	// SystemPower is the reported (extrapolated) whole-system power.
	SystemPower power.Watts
	// Energy is the reported energy over the window scaled to the system
	// (J).
	Energy power.Joules
	// Efficiency is PerfGFlops / SystemPower when performance was given.
	Efficiency power.Efficiency
}

// TrueAverage returns the ground-truth average system power of a target
// over its core phase.
func TrueAverage(t Target) (power.Watts, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	lo, hi := t.coreWindow()
	return t.System.AverageBetween(lo, hi)
}

// Measure applies a spec to a target and returns the reported
// measurement. For subset specs it measures a node subset and
// extrapolates linearly, exactly as the methodology prescribes.
func Measure(t Target, spec Spec, opts Options) (*Measurement, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)
	var inst meter.Sampler
	var err error
	if opts.Model != nil {
		// Instrument randomness (calibration, window phase, per-reading
		// noise) comes from a derived stream so r's draws — window
		// placement and node-subset choice — are identical across models
		// under one seed: a model comparison then isolates metering
		// architecture instead of confounding it with subset luck.
		inst, err = opts.Model.NewInstrument(rng.New(opts.Seed ^ 0x6d65746572))
	} else {
		mspec := opts.Meter
		if mspec == (meter.Spec{}) {
			mspec = meter.Reference
		}
		if spec.SamplePeriod > 0 {
			mspec.SamplePeriod = spec.SamplePeriod
		}
		inst, err = meter.New(mspec, r)
	}
	if err != nil {
		return nil, err
	}

	start, end := t.coreWindow()
	core := end - start

	// Aspect 1b: choose the window.
	lo, hi := start, end
	if spec.Timing == WindowInMiddle80 {
		length := spec.WindowLength(core)
		regionLo, regionHi := start+0.1*core, start+0.9*core
		if length > regionHi-regionLo {
			length = regionHi - regionLo
		}
		switch opts.Placement {
		case PlaceEarliest:
			lo = regionLo
		case PlaceLatest:
			lo = regionHi - length
		case PlaceCenter:
			lo = start + core/2 - length/2
		case PlaceBest:
			best, err := BestWindow(t.System, regionLo, regionHi, length, maxSearchSteps)
			if err != nil {
				return nil, err
			}
			lo = best
		default: // PlaceRandom
			lo = regionLo + r.Float64()*(regionHi-length-regionLo)
		}
		hi = lo + length
	}

	// Aspect 2: choose the node subset.
	trueAvg, err := TrueAverage(t)
	if err != nil {
		return nil, err
	}
	nodeWatts := float64(trueAvg) / float64(t.TotalNodes)
	nNodes, err := spec.RequiredNodes(t.TotalNodes, nodeWatts)
	if err != nil {
		return nil, err
	}

	m := &Measurement{
		System:    t.Name,
		Spec:      spec,
		Placement: opts.Placement,
		WindowLo:  lo,
		WindowHi:  hi,
		NodesUsed: nNodes,
	}

	var subsetTrace *power.Trace
	scale := 1.0
	if nNodes >= t.TotalNodes {
		subsetTrace = t.System
		m.NodeIndex = nil
	} else {
		if t.NodeTrace == nil && t.SubsetTrace == nil {
			return nil, errors.New("methodology: subset measurement needs per-node traces")
		}
		idx := r.SampleWithoutReplacement(t.TotalNodes, nNodes)
		if opts.BiasLowPowerNodes {
			idx = lowestPowerNodes(t, nNodes)
		}
		m.NodeIndex = idx
		if t.SubsetTrace != nil {
			subsetTrace, err = t.SubsetTrace(idx, lo, hi)
			if err != nil {
				return nil, err
			}
		} else {
			traces := make([]*power.Trace, len(idx))
			for i, node := range idx {
				traces[i] = t.NodeTrace(node)
			}
			subsetTrace, err = sumAligned(traces)
			if err != nil {
				return nil, err
			}
		}
		scale = float64(t.TotalNodes) / float64(nNodes)
	}

	// Aspect 1a: sampled average or integrated energy.
	var avg power.Watts
	if spec.SamplePeriod == 0 {
		e, err := inst.Energy(subsetTrace, lo, hi)
		if err != nil {
			return nil, err
		}
		avg = power.Watts(float64(e) / (hi - lo))
	} else {
		avg, err = inst.AveragePower(subsetTrace, lo, hi)
		if err != nil {
			return nil, err
		}
	}
	m.SubsetAvg = avg
	m.SystemPower = power.Watts(float64(avg) * scale)
	m.Energy = power.Joules(float64(m.SystemPower) * (hi - lo))
	if t.PerfGFlops > 0 {
		m.Efficiency = power.EfficiencyOf(power.GFlops(t.PerfGFlops), m.SystemPower)
	}
	return m, nil
}

// RelativeError returns the signed relative error of the measurement
// against the ground-truth full-core-phase system average.
func (m *Measurement) RelativeError(t Target) (float64, error) {
	truth, err := TrueAverage(t)
	if err != nil {
		return 0, err
	}
	return (float64(m.SystemPower) - float64(truth)) / float64(truth), nil
}

// lowestPowerNodes returns the n nodes with the lowest time-averaged
// power — deliberately biased subset selection.
func lowestPowerNodes(t Target, n int) []int {
	type nodeAvg struct {
		idx int
		avg float64
	}
	all := make([]nodeAvg, t.TotalNodes)
	for i := 0; i < t.TotalNodes; i++ {
		if t.NodeAvg != nil {
			all[i] = nodeAvg{idx: i, avg: t.NodeAvg(i)}
			continue
		}
		avg, err := t.NodeTrace(i).Average()
		if err != nil {
			avg = 0
		}
		all[i] = nodeAvg{idx: i, avg: float64(avg)}
	}
	// Partial selection sort is fine for the sizes involved.
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].avg < all[min].avg {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].idx
	}
	return out
}

// sumAligned sums traces that share identical timestamps (as traces from
// one simulated run do), avoiding the O(n·T·log T) general merge.
func sumAligned(traces []*power.Trace) (*power.Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("methodology: no traces to sum")
	}
	base := traces[0].Samples()
	out := make([]power.Sample, len(base))
	copy(out, base)
	for _, tr := range traces[1:] {
		s := tr.Samples()
		if len(s) != len(out) {
			return nil, errors.New("methodology: node traces not aligned")
		}
		for i := range out {
			if s[i].Time != out[i].Time {
				return nil, errors.New("methodology: node trace timestamps differ")
			}
			out[i].Power += s[i].Power
		}
	}
	return power.NewTrace(out)
}
