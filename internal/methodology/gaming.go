package methodology

import (
	"errors"
	"fmt"

	"nodevar/internal/power"
)

// maxSearchSteps bounds the gaming search's window-start granularity.
const maxSearchSteps = 4096

// BestWindow finds the start of the length-long window within
// [regionLo, regionHi] whose average power is lowest, scanning at most
// steps candidate positions. It returns the best window start.
func BestWindow(tr *power.Trace, regionLo, regionHi, length float64, steps int) (float64, error) {
	if length <= 0 {
		return 0, errors.New("methodology: window length must be positive")
	}
	if regionHi-regionLo < length {
		return 0, fmt.Errorf("methodology: region [%v, %v] shorter than window %v",
			regionLo, regionHi, length)
	}
	if steps < 2 {
		steps = 2
	}
	span := regionHi - length - regionLo
	stride := span / float64(steps-1)
	bestLo := regionLo
	bestAvg, err := tr.AverageBetween(regionLo, regionLo+length)
	if err != nil {
		return 0, err
	}
	if span <= 0 {
		return bestLo, nil
	}
	for i := 1; i < steps; i++ {
		lo := regionLo + float64(i)*stride
		avg, err := tr.AverageBetween(lo, lo+length)
		if err != nil {
			return 0, err
		}
		if avg < bestAvg {
			bestAvg, bestLo = avg, lo
		}
	}
	return bestLo, nil
}

// GamingReport quantifies how much a Level-1-style window can be gamed on
// a given run, reproducing the TSUBAME-KFC (-10.9% power) and L-CSC
// (+23.9% efficiency) cases of Section 3.
type GamingReport struct {
	System string
	// TrueAvg is the full-core-phase average power.
	TrueAvg power.Watts
	// BestWindowAvg is the average over the most favourable legal window.
	BestWindowAvg power.Watts
	// WindowLo/WindowHi locate that window.
	WindowLo, WindowHi float64
	// PowerReduction is 1 - BestWindowAvg/TrueAvg (TSUBAME-KFC's
	// "10.9% reduction in its power consumption measurement").
	PowerReduction float64
	// EfficiencyGain is TrueAvg/BestWindowAvg - 1 (L-CSC's "23.9%
	// improved power efficiency").
	EfficiencyGain float64
}

// AnalyzeGaming measures the exposure of a system trace to optimal-window
// selection under the original Level 1 timing rule.
func AnalyzeGaming(name string, tr *power.Trace) (*GamingReport, error) {
	if tr == nil || tr.Len() < 2 {
		return nil, errors.New("methodology: gaming analysis needs a trace")
	}
	spec := MustLevelSpec(Level1)
	start, end := tr.Start(), tr.End()
	core := end - start
	length := spec.WindowLength(core)
	regionLo, regionHi := start+0.1*core, start+0.9*core
	if length > regionHi-regionLo {
		length = regionHi - regionLo
	}
	lo, err := BestWindow(tr, regionLo, regionHi, length, maxSearchSteps)
	if err != nil {
		return nil, err
	}
	trueAvg, err := tr.Average()
	if err != nil {
		return nil, err
	}
	bestAvg, err := tr.AverageBetween(lo, lo+length)
	if err != nil {
		return nil, err
	}
	return &GamingReport{
		System:         name,
		TrueAvg:        trueAvg,
		BestWindowAvg:  bestAvg,
		WindowLo:       lo,
		WindowHi:       lo + length,
		PowerReduction: 1 - float64(bestAvg)/float64(trueAvg),
		EfficiencyGain: float64(trueAvg)/float64(bestAvg) - 1,
	}, nil
}
