package rng

import (
	"math"
	"math/bits"
)

// This file holds the discrete-distribution kernels behind the
// count-based bootstrap: exact binomial and hypergeometric samplers and
// the conditional-decomposition multinomial / multivariate
// hypergeometric draws built on them. The design constraint throughout
// is O(1) or O(sd) expected work per variate with zero heap allocation,
// so that a coverage-study replicate costs O(pilot) regardless of the
// simulated machine size.

// lgamma is math.Lgamma without the sign return, for log-pmf arithmetic.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// btrsCutoff splits Binomial between plain inversion and the BTRS
// transformed-rejection sampler: below it the inversion walk is short
// (expected n·p steps), above it BTRS accepts in O(1) expected trials
// and is valid (it requires n·min(p,1-p) ≳ 10).
const btrsCutoff = 10

// Binomial returns a variate with the Binomial(n, p) distribution: the
// number of successes in n independent trials of probability p. It
// panics if n is negative or p is NaN; p is clamped to [0, 1].
//
// For n·min(p,1-p) below a small cutoff it uses inversion (BINV: walk
// the CDF from zero, O(n·p) expected steps); above it, Hörmann's BTRS
// transformed-rejection sampler with an O(1) expected number of
// uniforms. The split keeps every call allocation-free and cheap at
// both extremes.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial called with negative n")
	}
	if math.IsNaN(p) {
		panic("rng: Binomial called with NaN p")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Work on q = min(p, 1-p) and flip the result back: both samplers
	// want the success probability in (0, 1/2].
	flipped := p > 0.5
	q := p
	if flipped {
		q = 1 - p
	}
	var k int
	switch {
	case q == 0.5:
		k = r.binomialHalf(n)
	case float64(n)*q < btrsCutoff:
		k = r.binomialInv(n, q)
	default:
		k = r.binomialBTRS(n, q)
	}
	if flipped {
		k = n - k
	}
	return k
}

// popcountCutoff is where Binomial(n, 1/2) switches from popcount
// (n/64 generator words) to BTRS (two uniforms expected): past ~2k
// trials the rejection sampler is cheaper than streaming the bits.
const popcountCutoff = 2048

// binomialHalf returns a Binomial(n, 1/2) variate as the popcount of n
// fair random bits: exact, transcendental-free, and ~64 trials per
// generator word, deferring to BTRS for very large n. It is the
// workhorse of the halving decomposition in MultinomialEqual, where
// every even split is a fair coin.
func (r *Rand) binomialHalf(n int) int {
	if n > popcountCutoff {
		return r.binomialBTRS(n, 0.5)
	}
	k := 0
	for ; n >= 64; n -= 64 {
		k += bits.OnesCount64(r.Uint64())
	}
	if n > 0 {
		k += bits.OnesCount64(r.Uint64() & (1<<uint(n) - 1))
	}
	return k
}

// binomialInv is CDF inversion from zero (BINV): one uniform, then a
// multiplicative pmf recurrence. Requires 0 < p <= 1/2 and n·p small
// enough that (1-p)^n does not underflow (guaranteed by btrsCutoff).
func (r *Rand) binomialInv(n int, p float64) int {
	s := p / (1 - p)
	// pmf(0) = (1-p)^n, computed in log space for accuracy.
	f := math.Exp(float64(n) * math.Log1p(-p))
	u := r.Float64()
	k := 0
	for u > f && k < n {
		u -= f
		k++
		f *= s * float64(n-k+1) / float64(k)
	}
	return k
}

// binomialBTRS is Hörmann's BTRS sampler (transformed rejection with
// squeeze, 1993). Requires 0 < p <= 1/2 and n·p >= 10.
func (r *Rand) binomialBTRS(n int, p float64) int {
	fn := float64(n)
	q := 1 - p
	spq := math.Sqrt(fn * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := fn*p + 0.5
	vr := 0.92 - 4.2/b
	// The transcendental-heavy constants (two Lgammas, two Logs) are
	// deferred until a candidate actually fails the squeeze: the majority
	// of calls accept inside it, and in the multinomial decomposition
	// every call has fresh (n, p) so nothing amortizes across calls.
	var alpha, lpq, m, h float64
	ready := false
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		// Squeeze: deep inside the dominating region the candidate is
		// accepted without evaluating the pmf.
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || k > fn {
			continue
		}
		if !ready {
			alpha = (2.83 + 5.1/b) * spq
			lpq = math.Log(p / q)
			m = math.Floor((fn + 1) * p)
			h = lgamma(m+1) + lgamma(fn-m+1)
			ready = true
		}
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgamma(k+1)-lgamma(fn-k+1)+(k-m)*lpq {
			return int(k)
		}
	}
}

// Hypergeometric returns a variate with the Hypergeometric(nGood, nBad,
// draws) distribution: the number of "good" items in a uniform
// without-replacement sample of size draws from a population of
// nGood+nBad. It panics on negative arguments or draws > nGood+nBad.
//
// The sampler first applies the two exact symmetries (complementing the
// sample, swapping good/bad) to shrink the working parameters, then
// inverts the CDF starting from the mode, walking outward with the pmf
// recurrence. Expected cost is O(1 + sd) with sd <= sqrt(draws)/2 and no
// allocation; starting at the mode (whose pmf is evaluated once in log
// space) keeps the walk short and immune to the tail underflow that
// breaks inversion from zero.
func (r *Rand) Hypergeometric(nGood, nBad, draws int) int {
	if nGood < 0 || nBad < 0 || draws < 0 {
		panic("rng: negative argument to Hypergeometric")
	}
	total := nGood + nBad
	if draws > total {
		panic("rng: draws exceed population in Hypergeometric")
	}
	// Degenerate cases resolve without consuming randomness; callers
	// (the multivariate decomposition) rely on that to skip exhausted
	// cells cheaply and deterministically.
	if draws == 0 || nGood == 0 {
		return 0
	}
	if nBad == 0 {
		return draws
	}
	if draws == total {
		return nGood
	}
	// Symmetry 1: sampling draws items fixes the complement too, and
	// good items split between them, so x ~ nGood - Hyper(draws'=total-draws).
	k, complemented := draws, false
	if 2*k > total {
		k, complemented = total-k, true
	}
	// Symmetry 2: counting bad items instead of good, x ~ k - Hyper(swap).
	good, bad, swapped := nGood, nBad, false
	if good > bad {
		good, bad, swapped = bad, good, true
	}
	x := r.hyperInvMode(good, bad, k)
	if swapped {
		x = k - x
	}
	if complemented {
		x = nGood - x
	}
	return x
}

// hyperInvMode inverts the Hypergeometric(good, bad, k) CDF from the
// mode outward. Requires the non-degenerate reduced case: 0 < k,
// 0 < good <= bad, k <= (good+bad)/2.
func (r *Rand) hyperInvMode(good, bad, k int) int {
	total := good + bad
	lo := k - bad
	if lo < 0 {
		lo = 0
	}
	hi := k
	if good < hi {
		hi = good
	}
	mode := (k + 1) * (good + 1) / (total + 2)
	if mode < lo {
		mode = lo
	}
	if mode > hi {
		mode = hi
	}
	// log pmf(mode) = log C(good, mode) + log C(bad, k-mode) - log C(total, k).
	lpm := lchoose(good, mode) + lchoose(bad, k-mode) - lchoose(total, k)
	pm := math.Exp(lpm)
	u := r.Float64()
	if u < pm {
		return mode
	}
	u -= pm
	// Walk outward from the mode, alternating sides; probabilities decay
	// geometrically past one sd, so the expected number of steps is O(sd).
	pu, pd := pm, pm
	xu, xd := mode, mode
	for {
		moved := false
		if xu < hi {
			pu *= float64(good-xu) * float64(k-xu) /
				(float64(xu+1) * float64(bad-k+xu+1))
			xu++
			if u < pu {
				return xu
			}
			u -= pu
			moved = true
		}
		if xd > lo {
			pd *= float64(xd) * float64(bad-k+xd) /
				(float64(good-xd+1) * float64(k-xd+1))
			xd--
			if u < pd {
				return xd
			}
			u -= pd
			moved = true
		}
		if !moved {
			// The support is exhausted and u is a rounding residue of the
			// accumulated pmf; the mode is the maximum-probability answer.
			return mode
		}
	}
}

// lchoose returns log C(n, k) for 0 <= k <= n.
func lchoose(n, k int) float64 {
	return lgamma(float64(n)+1) - lgamma(float64(k)+1) - lgamma(float64(n-k)+1)
}

// MultinomialEqual draws counts from the equal-probability
// Multinomial(n; 1/k, ..., 1/k) distribution into counts, which must
// have length k >= 1: counts[i] is how many of n category draws landed
// in category i, with every category equally likely. This is exactly the
// category histogram of n iid uniform draws over k values — a bootstrap
// resample in count form — without materializing the n draws.
//
// The decomposition is recursive halving: the count falling in the left
// half of the cells is Binomial over the remaining draws, conditioning
// splits the problem in two, and even splits are fair coins served by
// the popcount sampler at ~64 trials per generator word. Total cost is
// O(k + n·log(k)/64) word-level work and zero allocations — the
// conditional-binomial chain in cell order would instead pay the
// general sampler's setup for every cell.
func (r *Rand) MultinomialEqual(n int, counts []int) {
	if n < 0 {
		panic("rng: MultinomialEqual called with negative n")
	}
	if len(counts) == 0 {
		panic("rng: MultinomialEqual needs at least one category")
	}
	r.multinomialHalve(n, counts)
}

// multinomialHalve walks the halving tree iteratively — depth-first,
// always descending into the left half and stacking the right — with
// the generator state held in locals and the fair-coin popcount step
// inlined. The tree has ~2k nodes, so per-node function-call and
// state round-trip overhead would otherwise dominate the
// O(n·log(k)/64) word-level work.
func (r *Rand) multinomialHalve(n int, counts []int) {
	type seg struct{ n, lo, hi int }
	// Depth of the stack is the tree depth, ceil(log2(k))+1 <= 64 for
	// any in-memory slice length.
	var stack [64]seg
	sp := 0
	cur := seg{n, 0, len(counts)}
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for {
		k := cur.hi - cur.lo
		if k == 1 || cur.n == 0 {
			if k == 1 {
				counts[cur.lo] = cur.n
			} else {
				for i := cur.lo; i < cur.hi; i++ {
					counts[i] = 0
				}
			}
			if sp == 0 {
				break
			}
			sp--
			cur = stack[sp]
			continue
		}
		l := k >> 1
		var x int
		if k&1 != 0 || cur.n > popcountCutoff {
			// Uneven split or a fair split too large for popcount: the
			// general samplers read state through the receiver, so sync
			// the locals around the call.
			r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
			if k&1 != 0 {
				x = r.Binomial(cur.n, float64(l)/float64(k))
			} else {
				x = r.binomialBTRS(cur.n, 0.5)
			}
			s0, s1, s2, s3 = r.s[0], r.s[1], r.s[2], r.s[3]
		} else {
			// Fair split: popcount of cur.n fresh bits, generator inlined.
			m := cur.n
			for ; m >= 64; m -= 64 {
				w := rotl(s1*5, 7) * 9
				t := s1 << 17
				s2 ^= s0
				s3 ^= s1
				s1 ^= s2
				s0 ^= s3
				s2 ^= t
				s3 = rotl(s3, 45)
				x += bits.OnesCount64(w)
			}
			if m > 0 {
				w := rotl(s1*5, 7) * 9
				t := s1 << 17
				s2 ^= s0
				s3 ^= s1
				s1 ^= s2
				s0 ^= s3
				s2 ^= t
				s3 = rotl(s3, 45)
				x += bits.OnesCount64(w & (1<<uint(m) - 1))
			}
		}
		// Leaves are absorbed here rather than visited as iterations:
		// k == 2 writes both cells and pops, k == 3 writes the single
		// left cell and slides into the right pair, so only subtrees of
		// four or more cells ever touch the stack.
		switch {
		case k == 2:
			counts[cur.lo] = x
			counts[cur.lo+1] = cur.n - x
			if sp == 0 {
				r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
				return
			}
			sp--
			cur = stack[sp]
		case l == 1:
			counts[cur.lo] = x
			cur = seg{cur.n - x, cur.lo + 1, cur.hi}
		default:
			stack[sp] = seg{cur.n - x, cur.lo + l, cur.hi}
			sp++
			cur = seg{x, cur.lo, cur.lo + l}
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// MultivariateHypergeometric draws a without-replacement sample of size
// draws from a population described by counts (counts[i] items of kind
// i) and stores the per-kind sampled counts in dst. It panics if dst
// and counts differ in length or draws exceeds the population. The
// conditional decomposition costs O(len(counts) + sd work per cell) and
// allocates nothing: cell i is Hypergeometric over the items of kind i
// versus everything after it, conditioned on the draws already spent.
func (r *Rand) MultivariateHypergeometric(counts []int, draws int, dst []int) {
	if len(dst) != len(counts) {
		panic("rng: MultivariateHypergeometric dst/counts length mismatch")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			panic("rng: negative count in MultivariateHypergeometric")
		}
		total += c
	}
	if draws < 0 || draws > total {
		panic("rng: draws outside [0, population] in MultivariateHypergeometric")
	}
	rem := draws
	remTotal := total
	for i, c := range counts {
		if rem == 0 {
			dst[i] = 0
			continue
		}
		if i == len(counts)-1 {
			dst[i] = rem
			return
		}
		x := r.Hypergeometric(c, remTotal-c, rem)
		dst[i] = x
		rem -= x
		remTotal -= c
	}
}

// Uint64Block fills dst with consecutive outputs of the generator,
// producing exactly the stream len(dst) sequential Uint64 calls would,
// with the state kept in registers across the whole block. It is the
// bulk primitive under the batched resampling helpers.
func (r *Rand) Uint64Block(dst []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// resampleBlock is the batch width for the block-fill resamplers: big
// enough to amortize the per-block bookkeeping, small enough to live on
// the stack.
const resampleBlock = 128

// ResampleFloat64s fills dst with a uniform with-replacement resample of
// src (each dst element an independent uniform pick from src). Index
// generation runs over Uint64Block batches with Lemire reduction, so the
// call makes no heap allocations and touches the generator in blocks.
func (r *Rand) ResampleFloat64s(dst, src []float64) {
	n := uint64(len(src))
	if n == 0 {
		panic("rng: ResampleFloat64s from an empty source")
	}
	var buf [resampleBlock]uint64
	threshold := (-n) % n
	i := 0
	for i < len(dst) {
		k := len(dst) - i
		if k > resampleBlock {
			k = resampleBlock
		}
		r.Uint64Block(buf[:k])
		for _, w := range buf[:k] {
			hi, lo := bits.Mul64(w, n)
			for lo < threshold {
				// Lemire rejection: rare (probability < n/2^64), so the
				// retry draws straight from the generator.
				hi, lo = bits.Mul64(r.Uint64(), n)
			}
			dst[i] = src[hi]
			i++
		}
	}
}
