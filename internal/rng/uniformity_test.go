package rng_test

import (
	"testing"

	"nodevar/internal/rng"
	"nodevar/internal/stats"
)

// Chi-squared goodness-of-fit on Intn buckets, judged with this
// repository's own χ² distribution — the RNG and the stats stack
// validating each other. Lives in the external test package because
// stats itself builds on rng.
func TestIntnChiSquaredUniformity(t *testing.T) {
	r := rng.New(20250704)
	const buckets, draws = 32, 320000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	p := 1 - stats.ChiSquared{K: buckets - 1}.CDF(x2)
	if p < 0.001 {
		t.Errorf("uniformity rejected: χ² = %v, p = %v", x2, p)
	}
}

// The normal generator against the repository's own KS test.
func TestNormFloat64KolmogorovSmirnov(t *testing.T) {
	r := rng.New(77)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	d, p := stats.KolmogorovSmirnov(xs, stats.StdNormal)
	if p < 0.001 {
		t.Errorf("KS rejected normal generator: D = %v, p = %v", d, p)
	}
}
