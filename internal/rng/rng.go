// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible simulation experiments.
//
// The package intentionally avoids math/rand so that every experiment in
// this repository is bit-reproducible across Go releases: the stream
// produced by a given seed is fixed by this package alone. The core
// generator is xoshiro256**, seeded through SplitMix64 as its authors
// recommend. Independent streams for parallel work are derived with Split,
// which uses SplitMix64 to produce well-separated child seeds.
package rng

import (
	"math"
	"math/bits"
	"sync"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving independent child generators.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random source implementing xoshiro256**.
// The zero value is not usable; construct with New or Split.
type Rand struct {
	s [4]uint64
	// cached spare normal variate for NormFloat64 (Marsaglia polar method)
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// streams that are, for all practical purposes, independent.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state. SplitMix64
	// cannot produce four consecutive zeros, so this is already guaranteed,
	// but keep an explicit guard for clarity and safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new generator whose stream is independent of the parent's
// future output. It consumes one value from the parent, so repeated Split
// calls yield distinct children. Use it to hand separate streams to worker
// goroutines while keeping the overall experiment deterministic.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0, 1),
// suitable as input to inverse-CDF transforms that reject 0 and 1.
func (r *Rand) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// The implementation uses Lemire's multiply-shift rejection method,
// which is unbiased for every n.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	threshold := (-n) % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method, caching the second variate of each pair.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation. It panics if sigma is negative.
func (r *Rand) Normal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("rng: Normal called with negative sigma")
	}
	return mu + sigma*r.NormFloat64()
}

// ExpFloat64 returns an exponentially distributed variate with rate 1,
// via inversion.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a uniformly random permutation of [0, n) using a
// Fisher-Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place with Fisher-Yates.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or either argument is negative. The returned
// order is random. It allocates only the result slice; callers that own a
// buffer should use SampleWithoutReplacementInto.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k < 0 {
		panic("rng: negative argument to SampleWithoutReplacement")
	}
	out := make([]int, k)
	r.SampleWithoutReplacementInto(n, out)
	return out
}

// smallSampleCutoff bounds the duplicate linear scan in the sparse
// rejection path: up to this many draws the scan stays cheaper and more
// cache-friendly than maintaining a bitset.
const smallSampleCutoff = 128

// bitsetPool recycles the word slices behind the mid-size rejection
// path, so steady-state sampling performs no heap allocation. It holds
// *[]uint64 so that Put does not box a slice header on every call.
var bitsetPool = sync.Pool{New: func() any { return new([]uint64) }}

// SampleWithoutReplacementInto fills dst with len(dst) distinct indices
// drawn uniformly from [0, n), in random order. It panics if n is
// negative or len(dst) > n.
//
// For sparse draws (k·8 < n) it uses rejection with a duplicate linear
// scan over dst for small k and a pooled bitset otherwise — both paths
// allocation-free in steady state, replacing the per-call map the sparse
// path once built. Dense draws fall back to a partial Fisher-Yates over
// a scratch permutation, which allocates O(n) and is the right tool only
// when most of the population is sampled anyway.
func (r *Rand) SampleWithoutReplacementInto(n int, dst []int) {
	k := len(dst)
	if n < 0 {
		panic("rng: negative argument to SampleWithoutReplacement")
	}
	if k > n {
		panic("rng: sample size exceeds population in SampleWithoutReplacement")
	}
	if k == 0 {
		return
	}
	switch {
	case k*8 >= n:
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		copy(dst, p[:k])
	case k <= smallSampleCutoff:
		for i := 0; i < k; {
			v := r.Intn(n)
			dup := false
			for _, prev := range dst[:i] {
				if prev == v {
					dup = true
					break
				}
			}
			if !dup {
				dst[i] = v
				i++
			}
		}
	default:
		wp := bitsetPool.Get().(*[]uint64)
		need := (n + 63) / 64
		if cap(*wp) < need {
			*wp = make([]uint64, need)
		}
		words := (*wp)[:need]
		for i := range words {
			words[i] = 0
		}
		for i := 0; i < k; {
			v := r.Intn(n)
			w, bit := v>>6, uint64(1)<<(uint(v)&63)
			if words[w]&bit == 0 {
				words[w] |= bit
				dst[i] = v
				i++
			}
		}
		bitsetPool.Put(wp)
	}
}

// Bernoulli returns true with the given probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
