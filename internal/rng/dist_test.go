package rng_test

// Goodness-of-fit tests for the discrete-distribution kernels: every
// sampler is checked against its exact pmf with a chi-square test (the
// chi-square CDF comes from internal/stats, hence the external test
// package — stats imports rng). Seeds are fixed, so a pass is
// deterministic; the thresholds are loose enough (p > 0.001) that a
// correct sampler passes for almost every seed, while an off-by-one or
// wrong-branch sampler fails catastrophically.

import (
	"math"
	"testing"

	"nodevar/internal/rng"
	"nodevar/internal/stats"
)

func lg(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func lchoose(n, k int) float64 {
	return lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1)
}

func binomPMF(n int, p float64, x int) float64 {
	if x < 0 || x > n {
		return 0
	}
	return math.Exp(lchoose(n, x) + float64(x)*math.Log(p) + float64(n-x)*math.Log1p(-p))
}

func hyperPMF(good, bad, draws, x int) float64 {
	if x < 0 || x > good || x > draws || draws-x > bad {
		return 0
	}
	return math.Exp(lchoose(good, x) + lchoose(bad, draws-x) - lchoose(good+bad, draws))
}

// chiSquareP tallies draws from sample over the support [lo, hi], merges
// adjacent cells until each expects at least 5 counts, and returns the
// chi-square goodness-of-fit p-value against pmf.
func chiSquareP(t *testing.T, sample func() int, pmf func(int) float64, lo, hi, draws int) float64 {
	t.Helper()
	obs := make([]float64, hi-lo+1)
	for i := 0; i < draws; i++ {
		x := sample()
		if x < lo || x > hi {
			t.Fatalf("draw %d outside support [%d, %d]", x, lo, hi)
		}
		obs[x-lo]++
	}
	exp := make([]float64, hi-lo+1)
	for x := lo; x <= hi; x++ {
		exp[x-lo] = pmf(x) * float64(draws)
	}
	// Greedy left-to-right merge so every bin expects >= 5.
	var binObs, binExp []float64
	var co, ce float64
	for i := range exp {
		co += obs[i]
		ce += exp[i]
		if ce >= 5 {
			binObs = append(binObs, co)
			binExp = append(binExp, ce)
			co, ce = 0, 0
		}
	}
	if len(binExp) == 0 {
		t.Fatal("support too thin for a chi-square test")
	}
	binObs[len(binObs)-1] += co
	binExp[len(binExp)-1] += ce
	if len(binExp) < 2 {
		t.Fatal("fewer than 2 bins after merging")
	}
	var stat float64
	for i := range binExp {
		d := binObs[i] - binExp[i]
		stat += d * d / binExp[i]
	}
	return 1 - stats.ChiSquared{K: float64(len(binExp) - 1)}.CDF(stat)
}

func TestBinomialGOF(t *testing.T) {
	cases := []struct {
		name string
		n    int
		p    float64
		seed uint64
	}{
		{"inversion_small", 25, 0.3, 101},       // BINV path (n·p = 7.5)
		{"inversion_flipped", 40, 0.9, 102},     // p > 1/2, n·q = 4 → flip + BINV
		{"btrs_moderate", 400, 0.25, 103},       // BTRS path (n·p = 100)
		{"btrs_flipped", 300, 0.8, 104},         // flip + BTRS (n·q = 60)
		{"btrs_near_cutoff", 50, 0.25, 105},     // BTRS just past the split (12.5)
		{"inversion_tiny_p", 5000, 0.0004, 106}, // huge n, n·p = 2
		{"popcount_half", 1000, 0.5, 107},       // p = 1/2 → popcount path
		{"btrs_half", 6000, 0.5, 108},           // p = 1/2 past popcountCutoff → BTRS
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(tc.seed)
			p := chiSquareP(t,
				func() int { return r.Binomial(tc.n, tc.p) },
				func(x int) float64 { return binomPMF(tc.n, tc.p, x) },
				0, tc.n, 20000)
			if p < 0.001 {
				t.Errorf("Binomial(%d, %v) GOF p-value = %v", tc.n, tc.p, p)
			}
		})
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := rng.New(1)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	for i := 0; i < 1000; i++ {
		if k := r.Binomial(7, 0.37); k < 0 || k > 7 {
			t.Fatalf("Binomial(7, .37) = %d outside [0, 7]", k)
		}
	}
	for _, bad := range []float64{math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Binomial(5, %v) did not panic", bad)
				}
			}()
			r.Binomial(5, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Binomial(-1, .5) did not panic")
			}
		}()
		r.Binomial(-1, 0.5)
	}()
}

func TestHypergeometricGOF(t *testing.T) {
	cases := []struct {
		name             string
		good, bad, draws int
		seed             uint64
	}{
		{"sparse", 8, 200, 30, 201},           // tiny expected count
		{"balanced", 50, 50, 40, 202},         // mid-size walk
		{"complement", 300, 200, 380, 203},    // draws > N/2 → complement symmetry
		{"swap", 120, 30, 60, 204},            // good > bad → swap symmetry
		{"both_symmetries", 90, 60, 110, 205}, // complement then swap
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(tc.seed)
			lo := tc.draws - tc.bad
			if lo < 0 {
				lo = 0
			}
			hi := tc.draws
			if tc.good < hi {
				hi = tc.good
			}
			p := chiSquareP(t,
				func() int { return r.Hypergeometric(tc.good, tc.bad, tc.draws) },
				func(x int) float64 { return hyperPMF(tc.good, tc.bad, tc.draws, x) },
				lo, hi, 20000)
			if p < 0.001 {
				t.Errorf("Hypergeometric(%d, %d, %d) GOF p-value = %v",
					tc.good, tc.bad, tc.draws, p)
			}
		})
	}
}

func TestHypergeometricEdgeCases(t *testing.T) {
	r := rng.New(2)
	if got := r.Hypergeometric(5, 5, 0); got != 0 {
		t.Errorf("draws=0 → %d", got)
	}
	if got := r.Hypergeometric(0, 9, 4); got != 0 {
		t.Errorf("good=0 → %d", got)
	}
	if got := r.Hypergeometric(6, 0, 4); got != 4 {
		t.Errorf("bad=0 → %d", got)
	}
	if got := r.Hypergeometric(6, 3, 9); got != 6 {
		t.Errorf("draws=N → %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("draws > N did not panic")
			}
		}()
		r.Hypergeometric(3, 3, 7)
	}()
}

func TestMultinomialEqualMarginalsAndSum(t *testing.T) {
	r := rng.New(301)
	const n, k, trials = 1000, 6, 4000
	counts := make([]int, k)
	cell0 := make([]int, trials)
	for tr := 0; tr < trials; tr++ {
		r.MultinomialEqual(n, counts)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative cell count %d", c)
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("counts sum to %d, want %d", sum, n)
		}
		cell0[tr] = counts[0]
	}
	// Marginal of any cell is Binomial(n, 1/k).
	i := 0
	p := chiSquareP(t,
		func() int { x := cell0[i]; i++; return x },
		func(x int) float64 { return binomPMF(n, 1.0/k, x) },
		0, n, trials)
	if p < 0.001 {
		t.Errorf("MultinomialEqual cell marginal GOF p-value = %v", p)
	}
}

func TestMultivariateHypergeometricMarginalsAndSum(t *testing.T) {
	r := rng.New(401)
	src := []int{5, 40, 20, 3, 60}
	total := 0
	for _, c := range src {
		total += c
	}
	const draws, trials = 35, 4000
	dst := make([]int, len(src))
	cell1 := make([]int, trials)
	for tr := 0; tr < trials; tr++ {
		r.MultivariateHypergeometric(src, draws, dst)
		sum := 0
		for i, c := range dst {
			if c < 0 || c > src[i] {
				t.Fatalf("cell %d drew %d of %d available", i, c, src[i])
			}
			sum += c
		}
		if sum != draws {
			t.Fatalf("sample sums to %d, want %d", sum, draws)
		}
		cell1[tr] = dst[1]
	}
	// Marginal of cell i is Hypergeometric(src[i], total-src[i], draws).
	i := 0
	p := chiSquareP(t,
		func() int { x := cell1[i]; i++; return x },
		func(x int) float64 { return hyperPMF(src[1], total-src[1], draws, x) },
		0, draws, trials)
	if p < 0.001 {
		t.Errorf("MultivariateHypergeometric cell marginal GOF p-value = %v", p)
	}
}

func TestUint64BlockMatchesSequential(t *testing.T) {
	a, b := rng.New(77), rng.New(77)
	block := make([]uint64, 1000)
	a.Uint64Block(block[:601])
	a.Uint64Block(block[601:])
	for i, w := range block {
		if seq := b.Uint64(); w != seq {
			t.Fatalf("block output %d = %x, sequential = %x", i, w, seq)
		}
	}
	// The generators must be left in identical states.
	if a.Uint64() != b.Uint64() {
		t.Fatal("states diverged after block fill")
	}
}

func TestResampleFloat64s(t *testing.T) {
	r := rng.New(55)
	src := []float64{1.5, 2.5, 3.5, 4.5, 5.5}
	dst := make([]float64, 10000)
	r.ResampleFloat64s(dst, src)
	counts := map[float64]int{}
	for _, v := range dst {
		counts[v]++
	}
	if len(counts) != len(src) {
		t.Fatalf("resample produced %d distinct values, want %d", len(counts), len(src))
	}
	for v, c := range counts {
		if math.Abs(float64(c)-2000) > 6*math.Sqrt(2000) {
			t.Errorf("value %v drawn %d times, want ~2000", v, c)
		}
	}
	// Determinism across calls with the same seed.
	r2 := rng.New(55)
	dst2 := make([]float64, len(dst))
	r2.ResampleFloat64s(dst2, src)
	for i := range dst {
		if dst[i] != dst2[i] {
			t.Fatalf("resample not deterministic at %d", i)
		}
	}
}

func TestDistSamplersAllocationFree(t *testing.T) {
	r := rng.New(9)
	counts := make([]int, 516)
	sub := make([]int, 516)
	src := make([]float64, 516)
	dst := make([]float64, 516)
	for i := range src {
		src[i] = float64(i)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.MultinomialEqual(9216, counts)
		r.MultivariateHypergeometric(counts, 50, sub)
	}); n != 0 {
		t.Errorf("multinomial+hypergeometric draw allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.ResampleFloat64s(dst, src)
	}); n != 0 {
		t.Errorf("ResampleFloat64s allocates %v per run", n)
	}
	smp := make([]int, 100)
	if n := testing.AllocsPerRun(100, func() {
		r.SampleWithoutReplacementInto(10000, smp)
	}); n != 0 {
		t.Errorf("SampleWithoutReplacementInto (small-k path) allocates %v per run", n)
	}
	mid := make([]int, 500)
	r.SampleWithoutReplacementInto(100000, mid) // warm the bitset pool
	if n := testing.AllocsPerRun(100, func() {
		r.SampleWithoutReplacementInto(100000, mid)
	}); n != 0 {
		t.Errorf("SampleWithoutReplacementInto (bitset path) allocates %v per run", n)
	}
}

func BenchmarkBinomial(b *testing.B) {
	cases := []struct {
		name string
		n    int
		p    float64
	}{
		{"inv_np7", 25, 0.3},
		{"btrs_np100", 400, 0.25},
		{"btrs_np2304", 9216, 0.25},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			r := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Binomial(tc.n, tc.p)
			}
		})
	}
}

func BenchmarkHypergeometric(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Hypergeometric(18, 9198, 50)
	}
}

// BenchmarkMultinomialEqual is the RNG cost of one count-based machine
// draw on the LRZ shape (pilot 516, N 9216).
func BenchmarkMultinomialEqual(b *testing.B) {
	r := rng.New(1)
	counts := make([]int, 516)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.MultinomialEqual(9216, counts)
	}
}

// BenchmarkCountedReplicate is the RNG cost of one count-based coverage
// replicate on the LRZ shape (pilot 516, N 9216, one subset of 10):
// the multinomial machine draw plus one sparse subset draw.
func BenchmarkCountedReplicate(b *testing.B) {
	r := rng.New(1)
	counts := make([]int, 516)
	idx := make([]int, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.MultinomialEqual(9216, counts)
		r.SampleWithoutReplacementInto(9216, idx)
	}
}

func BenchmarkSampleWithoutReplacementInto(b *testing.B) {
	r := rng.New(1)
	dst := make([]int, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SampleWithoutReplacementInto(10000, dst)
	}
}
