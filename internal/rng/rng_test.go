package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced the same first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64Open()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d too far from expected %v", i, c, expected)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
		sumCube += v * v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("normal third moment = %v, want ~0", skew)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(100, 5)
	}
	if mean := sum / n; math.Abs(mean-100) > 0.1 {
		t.Errorf("Normal(100,5) mean = %v", mean)
	}
}

func TestNormalNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normal with negative sigma did not panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(29)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("first element %d appeared %d times, want ~%v", i, c, expected)
		}
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	r := New(31)
	check := func(n, k int) {
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			t.Fatalf("SampleWithoutReplacement(%d,%d) returned %d items", n, k, len(s))
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("sample value %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d in sample of size %d from %d", v, k, n)
			}
			seen[v] = true
		}
	}
	// Both the rejection path (k*8 < n) and the shuffle path.
	check(1000, 5)
	check(1000, 500)
	check(10, 10)
	check(10, 0)
	check(0, 0)
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element should be included with probability k/n.
	r := New(37)
	const n, k, draws = 20, 5, 40000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		for _, v := range r.SampleWithoutReplacement(n, k) {
			counts[v]++
		}
	}
	expected := float64(draws) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Errorf("element %d included %d times, want ~%v", i, c, expected)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(41)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(43)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("Bernoulli(%v) hit rate %v", p, rate)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(47)
	n := 10
	calls := 0
	r.Shuffle(n, func(i, j int) { calls++ })
	if calls != n-1 {
		t.Errorf("Shuffle made %d swap calls, want %d", calls, n-1)
	}
}

// Property: Uint64n(n) < n for every n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(53)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the same seed always reproduces the same 10-element prefix.
func TestQuickSeedReproducibility(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 10; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}

func BenchmarkSampleWithoutReplacement(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SampleWithoutReplacement(10000, 100)
	}
}
