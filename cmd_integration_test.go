package nodevar_test

// End-to-end smoke tests of the command-line tools: build each binary
// once and drive its primary flag combinations, asserting on the output.
// These complement the library tests by covering flag wiring and I/O.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nodevar/internal/checkpoint"
	"nodevar/internal/obs"
	"nodevar/internal/rng"
	"nodevar/internal/sampling"
)

// buildCmds compiles every cmd/ binary into a temp dir once per test run.
func buildCmds(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping cmd integration in -short mode")
	}
	dir := t.TempDir()
	out, err := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	dir := buildCmds(t)
	bin := func(name string) string { return filepath.Join(dir, name) }

	t.Run("samplesize", func(t *testing.T) {
		out := run(t, bin("samplesize"), "-nodes", "18688", "-cv", "0.02", "-accuracy", "0.01")
		if !strings.Contains(out, "measure 16 nodes") {
			t.Errorf("samplesize output:\n%s", out)
		}
		out = run(t, bin("samplesize"), "-table")
		if !strings.Contains(out, "370") {
			t.Errorf("samplesize -table output:\n%s", out)
		}
		out = run(t, bin("samplesize"), "-nodes", "210", "-rules")
		if !strings.Contains(out, "4 nodes") || !strings.Contains(out, "21 nodes") {
			t.Errorf("samplesize -rules output:\n%s", out)
		}
	})

	t.Run("powersim", func(t *testing.T) {
		out := run(t, bin("powersim"), "-list")
		if !strings.Contains(out, "lcsc") || !strings.Contains(out, "sequoia") {
			t.Errorf("powersim -list output:\n%s", out)
		}
		csv := filepath.Join(dir, "trace.csv")
		out = run(t, bin("powersim"), "-system", "lcsc", "-samples", "500", "-csv", csv)
		if !strings.Contains(out, "59.1") {
			t.Errorf("powersim output:\n%s", out)
		}
		out = run(t, bin("powersim"), "-analyze", csv)
		if !strings.Contains(out, "Level-1 gaming") {
			t.Errorf("powersim -analyze output:\n%s", out)
		}
	})

	t.Run("green500", func(t *testing.T) {
		out := run(t, bin("green500"))
		if !strings.Contains(out, "L-CSC") || !strings.Contains(out, "5271.8") {
			t.Errorf("green500 output:\n%s", out)
		}
		out = run(t, bin("green500"), "-validate", "revised")
		if !strings.Contains(out, "VIOLATION") && !strings.Contains(out, "requires") {
			t.Errorf("green500 -validate output:\n%s", out)
		}
		out = run(t, bin("green500"), "-trend")
		if !strings.Contains(out, "Nov 2014") {
			t.Errorf("green500 -trend output:\n%s", out)
		}
		csv := filepath.Join(dir, "list.csv")
		run(t, bin("green500"), "-csv", csv)
		data, err := os.ReadFile(csv)
		if err != nil || !strings.Contains(string(data), "rank,system") {
			t.Errorf("green500 -csv file: %v\n%s", err, data)
		}
	})

	t.Run("coverage", func(t *testing.T) {
		out := run(t, bin("coverage"), "-replicates", "800", "-n", "5", "-levels", "0.95")
		if !strings.Contains(out, "95% coverage") {
			t.Errorf("coverage output:\n%s", out)
		}
	})

	t.Run("repro", func(t *testing.T) {
		svgDir := filepath.Join(dir, "svg")
		outDir := filepath.Join(dir, "csv")
		mdPath := filepath.Join(dir, "tables.md")
		out := run(t, bin("repro"), "-exp", "table5",
			"-out", outDir, "-svg", svgDir, "-md", mdPath)
		if !strings.Contains(out, "370") {
			t.Errorf("repro output:\n%s", out)
		}
		if _, err := os.Stat(filepath.Join(outDir, "table5_0.csv")); err != nil {
			t.Errorf("missing CSV output: %v", err)
		}
		md, err := os.ReadFile(mdPath)
		if err != nil || !strings.Contains(string(md), "| 0.5% | 62 |") {
			t.Errorf("markdown output: %v\n%s", err, md)
		}
		// Figure experiment produces SVG files.
		run(t, bin("repro"), "-exp", "figure4", "-svg", svgDir)
		if _, err := os.Stat(filepath.Join(svgDir, "figure4_vid_efficiency.svg")); err != nil {
			t.Errorf("missing SVG output: %v", err)
		}
	})
}

// TestNodevardServe boots the HTTP service on an ephemeral port,
// discovers the port from the startup line on stdout, exercises the API
// end to end, and checks that SIGTERM drains and exits 130 per the
// repo-wide signal convention.
func TestNodevardServe(t *testing.T) {
	dir := buildCmds(t)

	cmd := exec.Command(filepath.Join(dir, "nodevard"),
		"-addr", "127.0.0.1:0", "-drain-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("nodevard produced no startup line\n%s", stderr.String())
	}
	line := sc.Text()
	const prefix = "nodevard listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("startup line %q, want %q prefix", line, prefix)
	}
	url := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v\n%s", path, err, stderr.String())
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// Subset rules for the paper's 210-node example: Level 1 wants 4
	// nodes, the revised rule 21.
	status, body := get("/v1/rules?nodes=210")
	if status != http.StatusOK {
		t.Fatalf("/v1/rules: status %d\n%s", status, body)
	}
	var rules struct {
		Level1  int `json:"level1"`
		Revised int `json:"revised"`
	}
	if err := json.Unmarshal(body, &rules); err != nil {
		t.Fatalf("/v1/rules body: %v\n%s", err, body)
	}
	if rules.Level1 != 4 || rules.Revised != 21 {
		t.Errorf("rules for 210 nodes = %+v, want level1=4 revised=21", rules)
	}

	// Planning via POST round-trips through the same sampling code as
	// the samplesize command.
	resp, err := http.Post(url+"/v1/samplesize", "application/json",
		strings.NewReader(`{"population":18688,"cv":0.02,"accuracy":0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"nodes":16`) {
		t.Errorf("/v1/samplesize: status %d\n%s", resp.StatusCode, body)
	}

	if status, body = get("/healthz"); status != http.StatusOK {
		t.Errorf("/healthz: status %d\n%s", status, body)
	}

	// SIGTERM drains and exits with the signal convention's 130.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatalf("nodevard did not exit within 1m of SIGTERM\n%s", stderr.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != 130 {
		t.Fatalf("exit code %d after SIGTERM, want 130\n%s", code, stderr.String())
	}
}

// TestReproInterrupt drives the graceful-shutdown path end to end: a
// long Figure 3 run is interrupted with SIGINT once its checkpoint file
// exists, and must exit 130 leaving a loadable checkpoint and a
// run manifest with status "interrupted".
func TestReproInterrupt(t *testing.T) {
	dir := buildCmds(t)
	ckpt := filepath.Join(dir, "fig3.ckpt")
	manifest := filepath.Join(dir, "manifest.json")

	// Enough replicates that the study cannot finish before the signal
	// lands, with the first checkpoint flush (8 of 64 chunks) seconds in.
	cmd := exec.Command(filepath.Join(dir, "repro"),
		"-exp", "figure3", "-replicates", "400000",
		"-checkpoint", ckpt, "-manifest", manifest)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Wait for the checkpoint to appear, then interrupt.
	deadline := time.After(2 * time.Minute)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("repro exited before writing a checkpoint: %v\n%s", err, out.String())
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("no checkpoint after 2m\n%s", out.String())
		case <-time.After(20 * time.Millisecond):
		}
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatalf("repro did not exit within 1m of SIGINT\n%s", out.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != 130 {
		t.Fatalf("exit code %d after SIGINT, want 130\n%s", code, out.String())
	}

	// The manifest must be the v3 schema with the interrupted status and
	// the exec section describing the run.
	f, err := os.Open(manifest)
	if err != nil {
		t.Fatalf("no manifest after interrupt: %v", err)
	}
	defer f.Close()
	m, err := obs.ReadManifest(f)
	if err != nil {
		t.Fatalf("interrupted manifest unreadable: %v", err)
	}
	if m.Schema != obs.ManifestSchema || m.Status != obs.StatusInterrupted {
		t.Errorf("manifest schema %q status %q, want %q/interrupted", m.Schema, m.Status, obs.ManifestSchema)
	}
	if m.Exec == nil || m.Exec.Checkpoint != ckpt || m.Exec.Signal == "" {
		t.Errorf("manifest exec section: %+v", m.Exec)
	}

	// The checkpoint must be structurally intact: probing it with the
	// wrong kind must fail the *stamp* check (ErrMismatch), which only
	// happens after the schema and checksum validate.
	var state json.RawMessage
	err = checkpoint.Load(ckpt, "bogus/kind", 0, 0, &state)
	if !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("checkpoint probe error = %v, want ErrMismatch (intact envelope)", err)
	}
}

// TestNodevardIngestServe drives the streaming fleet subsystem end to
// end through a real nodevard process: a seeded 100-node stream is
// POSTed to /v1/ingest in batches (one re-sent verbatim to prove
// idempotency over the wire), the live sample-size endpoint is polled
// until it converges to the batch two-phase recommendation computed
// in-process over the same values, and SIGTERM drains with exit 130.
func TestNodevardIngestServe(t *testing.T) {
	dir := buildCmds(t)

	cmd := exec.Command(filepath.Join(dir, "nodevard"),
		"-addr", "127.0.0.1:0", "-drain-timeout", "30s",
		"-max-fleets", "8", "-fleet-window", "1m", "-ingest-max-batch", "64")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("nodevard produced no startup line\n%s", stderr.String())
	}
	const prefix = "nodevard listening on "
	line := sc.Text()
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("startup line %q, want %q prefix", line, prefix)
	}
	url := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
	go io.Copy(io.Discard, stdout)

	// A deterministic 100-node stream and its batch reference answer,
	// computed with the same library the server uses.
	const nodes = 100
	values := make([]float64, nodes)
	r := rng.New(2015)
	for i := range values {
		values[i] = r.Normal(415, 9)
	}
	wantRec, err := sampling.TwoPhase(values, 0.95, 0.01, nodes)
	if err != nil {
		t.Fatal(err)
	}

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/ingest: %v\n%s", err, stderr.String())
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Stream in 10 batches of 10; re-send the middle batch verbatim.
	var batches []string
	for start := 0; start < nodes; start += 10 {
		var sb strings.Builder
		sb.WriteString(`{"fleet":"live","samples":[`)
		for i := start; i < start+10; i++ {
			if i > start {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `{"node":"n%03d","seq":1,"watts":%v}`, i, values[i])
		}
		sb.WriteString(`]}`)
		batches = append(batches, sb.String())
	}
	for i, b := range batches {
		status, body := post(b)
		if status != http.StatusOK {
			t.Fatalf("ingest batch %d: status %d\n%s", i, status, body)
		}
		if i == 5 {
			status, body = post(b) // wire-level retry must be a no-op
			if status != http.StatusOK || !strings.Contains(string(body), `"duplicates":10`) {
				t.Fatalf("retried batch: status %d\n%s", status, body)
			}
		}
	}

	// Poll the live recommendation until it converges to the batch
	// two-phase answer over the full stream.
	deadline := time.After(time.Minute)
	for {
		resp, err := http.Get(url + "/v1/fleet/live/samplesize?accuracy=0.01&confidence=0.95&population=" + fmt.Sprint(nodes))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var sr struct {
			Samples     uint64 `json:"samples"`
			Recommended int    `json:"recommended"`
			Source      string `json:"source"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(b, &sr); err != nil {
				t.Fatalf("samplesize body: %v\n%s", err, b)
			}
			if sr.Samples == nodes && sr.Recommended == wantRec {
				if sr.Source != "live-ingest" {
					t.Fatalf("samplesize source %q, want live-ingest", sr.Source)
				}
				break
			}
		}
		select {
		case <-deadline:
			t.Fatalf("samplesize never converged to %d: last status %d body %s", wantRec, resp.StatusCode, b)
		case <-time.After(50 * time.Millisecond):
		}
	}

	// Stats and outliers views answer over the same live state.
	resp, err := http.Get(url + "/v1/fleet/live/stats")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(b), `"samples":100`) ||
		!strings.Contains(string(b), `"duplicates":10`) ||
		!strings.Contains(string(b), `"p50"`) {
		t.Fatalf("/v1/fleet/live/stats: status %d\n%s", resp.StatusCode, b)
	}
	resp, err = http.Get(url + "/v1/fleet/live/outliers?z=3")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"outliers"`) {
		t.Fatalf("/v1/fleet/live/outliers: status %d\n%s", resp.StatusCode, b)
	}

	// SIGTERM drains and exits with the signal convention's 130.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatalf("nodevard did not exit within 1m of SIGTERM\n%s", stderr.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != 130 {
		t.Fatalf("exit code %d after SIGTERM, want 130\n%s", code, stderr.String())
	}
}
