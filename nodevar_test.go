package nodevar

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeSampleSizeWorkflow(t *testing.T) {
	// A downstream user's planning session: Titan-scale machine, the
	// paper's default targets.
	plan := Plan{Confidence: 0.95, Accuracy: 0.01, CV: 0.02, Population: 18688}
	n, err := RequiredSampleSize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Errorf("required n = %d, want 16", n)
	}
	acc, err := ExpectedAccuracy(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.012 {
		t.Errorf("accuracy at recommendation = %v", acc)
	}
	if RecommendedNodes(18688) != 1869 || OldRuleNodes(18688) != 292 {
		t.Error("rule helpers wrong")
	}
}

func TestFacadeTable5(t *testing.T) {
	if got := PaperTable5().N[1][0]; got != 16 {
		t.Errorf("Table5[1%%][2%%] = %d", got)
	}
}

func TestFacadeSystemWorkflow(t *testing.T) {
	if len(Systems()) != 10 {
		t.Errorf("system count = %d", len(Systems()))
	}
	s, err := SystemByKey("lcsc")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SystemTrace(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Segments(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Core.Kilowatts()-59.1) > 0.5 {
		t.Errorf("L-CSC core = %v kW", rep.Core.Kilowatts())
	}
	gaming, err := AnalyzeGaming(s.Name, tr)
	if err != nil {
		t.Fatal(err)
	}
	if gaming.EfficiencyGain < 0.15 {
		t.Errorf("L-CSC gaming gain = %v", gaming.EfficiencyGain)
	}
}

func TestFacadeNodePowers(t *testing.T) {
	s, err := SystemByKey("lrz")
	if err != nil {
		t.Fatal(err)
	}
	xs, err := NodePowers(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 516 {
		t.Errorf("LRZ dataset size = %d", len(xs))
	}
	n, err := PilotSampleSize(xs, 0.95, 0.015, s.TotalNodes)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 || n > 25 {
		t.Errorf("pilot-based n = %d", n)
	}
}

func TestFacadeMethodology(t *testing.T) {
	spec, err := LevelSpec(Level1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MinNodeFraction != 1.0/64 {
		t.Error("Level 1 fraction")
	}
	if RevisedLevel1().MinNodes != 16 {
		t.Error("revised rule")
	}
}

func TestFacadeCoverage(t *testing.T) {
	s, _ := SystemByKey("lrz")
	pilot, err := NodePowers(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := CoverageStudy(CoverageConfig{
		Pilot:       pilot,
		Population:  s.TotalNodes,
		SampleSizes: []int{5},
		Levels:      []float64{0.95},
		Replicates:  1000,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || math.Abs(pts[0].Coverage-0.95) > 0.04 {
		t.Errorf("coverage = %+v", pts)
	}
}

func TestFacadeGreen500(t *testing.T) {
	l, err := NewList(Nov2014Top10())
	if err != nil {
		t.Fatal(err)
	}
	if l.Entries[0].System != "L-CSC" {
		t.Errorf("#1 = %s", l.Entries[0].System)
	}
	errs := ValidateSubmission(l.Entries[0].Submission, RevisedLevel1())
	if len(errs) == 0 {
		t.Error("a 20%-window submission should violate the revised rules")
	}
}

func TestFacadeVIDStudy(t *testing.T) {
	study, err := RunVIDStudy(VIDStudyConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Nodes) == 0 || study.FanDeltaWatts <= 100 {
		t.Errorf("study = %+v", study)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(ExperimentIDs()) != 14 {
		t.Errorf("experiment ids = %v", ExperimentIDs())
	}
	var b strings.Builder
	err := RenderExperiment(ExpTable5, ExperimentOptions{Seed: 1}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "370") {
		t.Errorf("Table 5 render missing values:\n%s", b.String())
	}
	res, err := RunExperiment(ExpTable3, ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != ExpTable3 {
		t.Error("experiment id mismatch")
	}
}

func TestFacadeAssess(t *testing.T) {
	m, err := SimulateMachine(MachineConfig{Nodes: 64, RuntimeSeconds: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := LevelSpec(Level1)
	meas, err := Measure(m.Target, spec, MeasureOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assess(meas, m.Target, 0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeBiasBounded {
		t.Error("Level 1 window flagged bias-free")
	}
	if a.SubsetAccuracy <= 0 {
		t.Errorf("assessment = %+v", a)
	}
}

func TestFacadeRankStabilityAndSyntheticList(t *testing.T) {
	subs, err := SyntheticList(60, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RankStability(subs, 0.15, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDisplacement <= 0 {
		t.Errorf("stability = %+v", res)
	}
}

func TestFacadeAblationExperiment(t *testing.T) {
	if _, err := RunExperiment(ExpAblation, ExperimentOptions{Replicates: 1200, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRackedMachineStudy(t *testing.T) {
	m, err := NewRackedMachine(20, 16, 400, 5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := SubsetStudy(m, []SubsetStrategy{SimpleRandom, WholeRacks}, 32, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[1].RMSError <= results[0].RMSError {
		t.Errorf("rack-correlated subsets should err more: %+v", results)
	}
}

func TestFacadeMeteringHierarchy(t *testing.T) {
	s, _ := SystemByKey("lcsc")
	tr, err := SystemTrace(s, 300)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMeteringHierarchy(tr, s.TotalNodes, FacilityModel{
		RackOverheadPerNode: 20,
		InterconnectWatts:   3000,
		OtherLoadsWatts:     30000,
		CoolingCOP:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pdu, err := h.BiasAt(PointPDU)
	if err != nil {
		t.Fatal(err)
	}
	fac, err := h.BiasAt(PointFacility)
	if err != nil {
		t.Fatal(err)
	}
	if !(fac > pdu && pdu > 0) {
		t.Errorf("bias ordering wrong: pdu %v, facility %v", pdu, fac)
	}
}

func TestFacadeProjectFleetCost(t *testing.T) {
	perNode := []float64{398, 402, 401, 399, 400, 400, 397, 403}
	proj, err := ProjectFleetCost(CostModel{
		EnergyPricePerKWh: 0.2, PUE: 1.3, UtilizationFactor: 1, Years: 1,
	}, perNode, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 × 400 W × 1.3 × 8766 h × 0.2 ≈ 911k.
	if proj.Cost < 8e5 || proj.Cost > 1.1e6 {
		t.Errorf("fleet cost = %v", proj.Cost)
	}
	if !(proj.Lo < proj.Cost && proj.Cost < proj.Hi) {
		t.Errorf("projection bounds: %+v", proj)
	}
}

func TestFacadeTenSegmentAverage(t *testing.T) {
	s, _ := SystemByKey("pizdaint")
	tr, err := SystemTrace(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	mean, segs, err := TenSegmentAverage(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 10 || mean <= 0 {
		t.Errorf("ten-segment: %v, %d segs", mean, len(segs))
	}
	// On the declining Piz Daint profile the last segment is the lowest.
	min := segs[0]
	for _, s := range segs {
		if s < min {
			min = s
		}
	}
	if segs[9] != min {
		t.Errorf("last segment %v is not the minimum %v", segs[9], min)
	}
}
