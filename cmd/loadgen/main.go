// Command loadgen drives nodevard's /v1/coverage endpoint with a
// deterministic open-loop request schedule: requests are issued on a
// fixed cadence derived from -rate regardless of how fast the server
// answers, which is what exposes capacity — a closed loop would politely
// slow down to whatever the server can do and hide the difference
// between one worker and four. The request sequence (bodies, seeds,
// issue times relative to start) is a pure function of the flags, so two
// runs against the same deployment offer byte-identical work.
//
// Each request is its own coverage study (consecutive seeds from
// -first-seed), so nothing coalesces or hits caches unless -studies
// bounds the seed cycle. The summary — offered/completed counts, status
// classes, degraded answers, completion throughput inside the window —
// is printed to stdout as one JSON object for harnesses to parse.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -rate 20 -duration 5s
//	loadgen -target $URL -rate 50 -duration 10s -replicates 800 -max-5xx 0
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"nodevar/internal/cli"
	"nodevar/internal/rng"
)

func main() {
	os.Exit(realMain())
}

// study renders the i-th request body. Consecutive requests get
// consecutive seeds; with cycle > 0 the seeds repeat every cycle
// requests (exercising the cache/coalescing path on purpose).
func study(firstSeed uint64, i, cycle, replicates int) (uint64, string) {
	idx := i
	if cycle > 0 {
		idx = i % cycle
	}
	seed := firstSeed + uint64(idx)
	// A small fixed pilot: the per-request identity lives in the seed.
	r := rng.New(424242)
	pilot := make([]string, 12)
	for k := range pilot {
		pilot[k] = fmt.Sprintf("%.4f", r.Normal(209.88, 5.31))
	}
	body := fmt.Sprintf(`{"pilot_data":[%s],"population":2000,"sample_sizes":[4,8],"levels":[0.9],"replicates":%d,"seed":%d}`,
		strings.Join(pilot, ","), replicates, seed)
	return seed, body
}

type outcome struct {
	status    int
	degraded  bool
	transport bool
	aborted   bool
	latency   time.Duration
	inWindow  bool
}

// summary is the machine-readable run result.
type summary struct {
	Offered     int     `json:"offered"`
	Completed   int     `json:"completed"`
	OK          int     `json:"ok_200"`
	Degraded    int     `json:"degraded"`
	Status4xx   int     `json:"status_4xx"`
	Status5xx   int     `json:"status_5xx"`
	Transport   int     `json:"transport_errors"`
	Aborted     int     `json:"aborted_at_cutoff"`
	DurationSec float64 `json:"duration_sec"`
	Throughput  float64 `json:"completed_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
}

func realMain() int {
	var (
		target     = flag.String("target", "", "nodevard base URL (required)")
		rate       = flag.Float64("rate", 10, "offered request rate per second (open loop)")
		duration   = flag.Duration("duration", 5*time.Second, "measurement window; requests are issued and counted inside it")
		firstSeed  = flag.Uint64("first-seed", 100000, "seed of the first study; request i uses first-seed+i")
		studies    = flag.Int("studies", 0, "cycle length of distinct studies; 0 gives every request a unique seed")
		replicates = flag.Int("replicates", 400, "bootstrap replicates per study")
		reqTimeout = flag.Duration("request-timeout", 60*time.Second, "per-request client budget")
		max5xx     = flag.Int("max-5xx", -1, "exit non-zero when more than this many 5xx responses arrive; -1 disables the gate")
		obsFlags   = cli.RegisterObsFlags()
		execFlags  = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}
	if *target == "" {
		fatal(errors.New("-target is required"))
	}
	if *rate <= 0 {
		fatal(fmt.Errorf("-rate %v must be positive", *rate))
	}

	run, err := obsFlags.Start("loadgen")
	if err != nil {
		fatal(err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("target", *target)
	run.SetConfig("rate", *rate)
	run.SetConfig("duration", duration.String())
	run.SetConfig("first_seed", *firstSeed)
	run.SetConfig("studies", *studies)
	run.SetConfig("replicates", *replicates)

	client := &http.Client{Timeout: *reqTimeout}
	url := strings.TrimRight(*target, "/") + "/v1/coverage"

	// The issue clock is open-loop: request i fires at start + i/rate,
	// whether or not earlier requests came back. At the window cutoff the
	// shared context aborts whatever is still in flight — those count as
	// aborted, not failed: the window closed on them, they did not break.
	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	deadline := start.Add(*duration)
	reqCtx, cutoff := context.WithDeadline(ctx, deadline)
	defer cutoff()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
	)
	offered := 0
	for i := 0; ; i++ {
		fireAt := start.Add(time.Duration(float64(i) * float64(interval)))
		if !fireAt.Before(deadline) {
			break
		}
		if d := time.Until(fireAt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		offered++
		_, body := study(*firstSeed, i, *studies, *replicates)
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			t0 := time.Now()
			o := issue(reqCtx, client, url, body)
			o.latency = time.Since(t0)
			o.inWindow = o.status == http.StatusOK && time.Now().Before(deadline)
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(body)
	}
	wg.Wait()

	s := summary{Offered: offered, DurationSec: duration.Seconds()}
	var lat []time.Duration
	for _, o := range outcomes {
		switch {
		case o.aborted:
			s.Aborted++
		case o.transport:
			s.Transport++
		case o.status == http.StatusOK:
			s.OK++
			if o.degraded {
				s.Degraded++
			}
			if o.inWindow {
				s.Completed++
				lat = append(lat, o.latency)
			}
		case o.status >= 500:
			s.Status5xx++
		case o.status >= 400:
			s.Status4xx++
		}
	}
	if s.DurationSec > 0 {
		s.Throughput = float64(s.Completed) / s.DurationSec
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.P50Ms = float64(lat[len(lat)/2]) / float64(time.Millisecond)
		s.P95Ms = float64(lat[len(lat)*95/100]) / float64(time.Millisecond)
	}

	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(s); err != nil {
		return run.Close(err)
	}
	run.SetConfig("summary_completed", s.Completed)
	run.SetConfig("summary_5xx", s.Status5xx)

	if *max5xx >= 0 && s.Status5xx > *max5xx {
		return run.Close(fmt.Errorf("loadgen: %d 5xx responses exceed the -max-5xx budget of %d", s.Status5xx, *max5xx))
	}
	if err := ctx.Err(); err != nil {
		return run.Close(err)
	}
	return run.Close(nil)
}

// issue sends one request and classifies the outcome.
func issue(ctx context.Context, client *http.Client, url, body string) outcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return outcome{transport: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcome{aborted: true}
		}
		return outcome{transport: true}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return outcome{aborted: true}
		}
		return outcome{transport: true}
	}
	o := outcome{status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var probe struct {
			Degraded bool `json:"degraded"`
		}
		if json.Unmarshal(raw, &probe) == nil {
			o.degraded = probe.Degraded
		}
	}
	return o
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
