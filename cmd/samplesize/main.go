// Command samplesize plans how many nodes must be measured to estimate a
// supercomputer's power with a given confidence and accuracy, using the
// paper's Equation 5 (with finite population correction).
//
// Usage:
//
//	samplesize -nodes 18688 -cv 0.02 -accuracy 0.01
//	samplesize -table            # reproduce the paper's Table 5
//	samplesize -nodes 210 -rules # compare old and revised list rules
package main

import (
	"flag"
	"fmt"
	"os"

	"nodevar/internal/cli"
	"nodevar/internal/report"
	"nodevar/internal/sampling"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		nodes      = flag.Int("nodes", 10000, "total nodes N (0 = infinite population)")
		cv         = flag.Float64("cv", 0.025, "anticipated sigma/mu of per-node power")
		accuracy   = flag.Float64("accuracy", 0.01, "target relative accuracy lambda")
		confidence = flag.Float64("confidence", 0.95, "confidence level")
		table      = flag.Bool("table", false, "print the paper's Table 5 grid")
		rules      = flag.Bool("rules", false, "compare the 1/64 rule with the revised max(16, 10%) rule")
		obsFlags   = cli.RegisterObsFlags()
		execFlags  = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}

	run, err := obsFlags.Start("samplesize")
	if err != nil {
		fatal(err)
	}
	_, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("nodes", *nodes)
	run.SetConfig("cv", *cv)
	run.SetConfig("accuracy", *accuracy)
	run.SetConfig("confidence", *confidence)

	if *table {
		grid := sampling.PaperTable5()
		t := report.NewTable("Recommended sample sizes (N = 10000, 95% confidence)",
			"accuracy", "cv=2%", "cv=3%", "cv=5%")
		for i, lam := range grid.Accuracies {
			t.AddRow(fmt.Sprintf("%.1f%%", lam*100),
				fmt.Sprint(grid.N[i][0]), fmt.Sprint(grid.N[i][1]), fmt.Sprint(grid.N[i][2]))
		}
		return run.Close(t.WriteText(os.Stdout))
	}

	if *rules {
		if *nodes <= 0 {
			return run.Close(fmt.Errorf("-rules needs -nodes > 0"))
		}
		old, revised := sampling.Level1Nodes(*nodes), sampling.RevisedRuleNodes(*nodes)
		fmt.Printf("system of %d nodes:\n", *nodes)
		fmt.Printf("  old 1/64 rule:            %d nodes\n", old)
		fmt.Printf("  revised max(16,10%%) rule: %d nodes\n", revised)
		return run.Close(nil)
	}

	plan := sampling.Plan{
		Confidence: *confidence,
		Accuracy:   *accuracy,
		CV:         *cv,
		Population: *nodes,
	}
	n, err := plan.RequiredSampleSize()
	if err != nil {
		return run.Close(err)
	}
	acc, err := plan.ExpectedAccuracy(n)
	if err != nil {
		return run.Close(err)
	}
	fmt.Printf("measure %d nodes\n", n)
	fmt.Printf("  confidence:         %.0f%%\n", *confidence*100)
	fmt.Printf("  target accuracy:    \u00b1%.2f%%\n", *accuracy*100)
	fmt.Printf("  achieved accuracy:  \u00b1%.2f%% (exact t quantile)\n", acc*100)
	fmt.Printf("  assumed sigma/mu:   %.2f%%\n", *cv*100)
	return run.Close(nil)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samplesize:", err)
	os.Exit(1)
}
