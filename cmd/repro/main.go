// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp all                      # everything, to stdout
//	repro -exp table5                   # one artifact
//	repro -exp figure3 -replicates 100000
//	repro -exp all -out results/        # also write per-table CSV files
//	repro -exp figure3 -checkpoint fig3.ckpt -resume -timeout 30m
//
// SIGINT/SIGTERM cancel the run gracefully: in-flight work stops at the
// next chunk boundary, the checkpoint (if configured) and a manifest
// with status "interrupted" are flushed, and the process exits 130. A
// second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nodevar/internal/cli"
	"nodevar/internal/core"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all' (ids: "+idList()+")")
		seed       = flag.Uint64("seed", 2015, "random seed")
		samples    = flag.Int("samples", 2000, "trace resolution")
		replicates = flag.Int("replicates", 20000, "Figure 3 bootstrap replicates (paper used 100000)")
		trials     = flag.Int("trials", 200, "repeated measurements in the rules study")
		out        = flag.String("out", "", "directory for CSV output (optional)")
		svg        = flag.String("svg", "", "directory for SVG figure output (optional)")
		md         = flag.String("md", "", "file for Markdown table output (optional)")
		obsFlags   = cli.RegisterObsFlags()
		execFlags  = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatalf("%v", err)
	}

	run, err := obsFlags.Start("repro")
	if err != nil {
		fatalf("%v", err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("exp", *exp)
	run.SetConfig("seed", *seed)
	run.SetConfig("samples", *samples)
	run.SetConfig("replicates", *replicates)
	run.SetConfig("trials", *trials)

	opts := core.Options{
		Seed:              *seed,
		TraceSamples:      *samples,
		Replicates:        *replicates,
		MeasurementTrials: *trials,
		CheckpointPath:    execFlags.Checkpoint,
		Resume:            execFlags.Resume,
	}

	// Experiments run in parallel (core.RunAllCtx) and render afterwards
	// in stable ID order, so the output is identical to a sequential run.
	// A failing experiment no longer aborts the batch: its siblings still
	// run and render, and the failures are summarized at exit.
	var results []core.Result
	var runErr error
	if *exp == "all" {
		results, runErr = core.RunAllCtx(ctx, opts)
	} else {
		var res core.Result
		res, runErr = core.RunCtx(ctx, core.ID(*exp), opts)
		results = []core.Result{res}
	}
	if runErr != nil {
		var es core.ExperimentErrors
		switch {
		case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
			// Graceful shutdown: skip rendering, flush artifacts, exit via
			// the status-aware path.
			return run.Close(runErr)
		case errors.As(runErr, &es):
			// Render what succeeded below, then exit non-zero.
		default:
			return run.Close(runErr)
		}
	}
	run.Log.Debug("experiments complete", "count", len(results))
	var mdFile *os.File
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fatalf("creating %s: %v", *md, err)
		}
		defer f.Close()
		mdFile = f
	}
	for _, res := range results {
		if res == nil {
			continue // failed experiment, summarized via runErr
		}
		id := res.ID()
		if err := res.Render(os.Stdout); err != nil {
			fatalf("rendering %s: %v", id, err)
		}
		fmt.Println()
		if *out != "" {
			if err := writeCSVs(*out, res); err != nil {
				fatalf("writing %s: %v", id, err)
			}
		}
		if *svg != "" {
			if err := writeSVGs(*svg, res); err != nil {
				fatalf("writing %s figures: %v", id, err)
			}
		}
		if mdFile != nil {
			fmt.Fprintf(mdFile, "## %s\n\n", res.Title())
			for _, t := range res.Tables() {
				if err := t.WriteMarkdown(mdFile); err != nil {
					fatalf("writing markdown for %s: %v", id, err)
				}
				fmt.Fprintln(mdFile)
			}
		}
	}
	return run.Close(runErr)
}

func writeSVGs(dir string, res core.Result) error {
	figs := res.Figures()
	if len(figs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, fig := range figs {
		f, err := os.Create(filepath.Join(dir, fig.Name+".svg"))
		if err != nil {
			return err
		}
		if err := fig.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func idList() string {
	ids := core.IDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return strings.Join(out, ", ")
}

func writeCSVs(dir string, res core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables() {
		name := fmt.Sprintf("%s_%d.csv", res.ID(), i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repro: "+format+"\n", args...)
	os.Exit(1)
}
