// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp all                      # everything, to stdout
//	repro -exp table5                   # one artifact
//	repro -exp figure3 -replicates 100000
//	repro -exp all -out results/        # also write per-table CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nodevar/internal/cli"
	"nodevar/internal/core"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all' (ids: "+idList()+")")
		seed       = flag.Uint64("seed", 2015, "random seed")
		samples    = flag.Int("samples", 2000, "trace resolution")
		replicates = flag.Int("replicates", 20000, "Figure 3 bootstrap replicates (paper used 100000)")
		trials     = flag.Int("trials", 200, "repeated measurements in the rules study")
		out        = flag.String("out", "", "directory for CSV output (optional)")
		svg        = flag.String("svg", "", "directory for SVG figure output (optional)")
		md         = flag.String("md", "", "file for Markdown table output (optional)")
		obsFlags   = cli.RegisterObsFlags()
	)
	flag.Parse()

	run, err := obsFlags.Start("repro")
	if err != nil {
		fatalf("%v", err)
	}
	run.SetConfig("exp", *exp)
	run.SetConfig("seed", *seed)
	run.SetConfig("samples", *samples)
	run.SetConfig("replicates", *replicates)
	run.SetConfig("trials", *trials)

	opts := core.Options{
		Seed:              *seed,
		TraceSamples:      *samples,
		Replicates:        *replicates,
		MeasurementTrials: *trials,
	}

	// Experiments run in parallel (core.RunAll) and render afterwards in
	// stable ID order, so the output is identical to a sequential run.
	var results []core.Result
	if *exp == "all" {
		all, err := core.RunAll(opts)
		if err != nil {
			fatalf("%v", err)
		}
		results = all
	} else {
		res, err := core.Run(core.ID(*exp), opts)
		if err != nil {
			fatalf("running %s: %v", *exp, err)
		}
		results = []core.Result{res}
	}
	run.Log.Debug("experiments complete", "count", len(results))
	var mdFile *os.File
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fatalf("creating %s: %v", *md, err)
		}
		defer f.Close()
		mdFile = f
	}
	for _, res := range results {
		id := res.ID()
		if err := res.Render(os.Stdout); err != nil {
			fatalf("rendering %s: %v", id, err)
		}
		fmt.Println()
		if *out != "" {
			if err := writeCSVs(*out, res); err != nil {
				fatalf("writing %s: %v", id, err)
			}
		}
		if *svg != "" {
			if err := writeSVGs(*svg, res); err != nil {
				fatalf("writing %s figures: %v", id, err)
			}
		}
		if mdFile != nil {
			fmt.Fprintf(mdFile, "## %s\n\n", res.Title())
			for _, t := range res.Tables() {
				if err := t.WriteMarkdown(mdFile); err != nil {
					fatalf("writing markdown for %s: %v", id, err)
				}
				fmt.Fprintln(mdFile)
			}
		}
	}
	if err := run.Finish(); err != nil {
		fatalf("writing observability output: %v", err)
	}
}

func writeSVGs(dir string, res core.Result) error {
	figs := res.Figures()
	if len(figs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, fig := range figs {
		f, err := os.Create(filepath.Join(dir, fig.Name+".svg"))
		if err != nil {
			return err
		}
		if err := fig.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func idList() string {
	ids := core.IDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return strings.Join(out, ", ")
}

func writeCSVs(dir string, res core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables() {
		name := fmt.Sprintf("%s_%d.csv", res.ID(), i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repro: "+format+"\n", args...)
	os.Exit(1)
}
