// Command benchgate turns `go test -bench` output into a committed
// JSON baseline and gates performance regressions against it.
//
// Emit a baseline (BENCH_6.json extends the BENCH_*.json trajectory):
//
//	go test -run='^$' -bench=... -benchmem ./... | benchgate -emit BENCH_6.json
//
// Gate a run against the committed baseline, failing on >15% ns/op
// regression of the key benches:
//
//	go test ... | benchgate -baseline BENCH_6.json -max-regress 0.15 \
//	    -require Table4,Figure3,BootstrapReplicates,CoverageStudy
//
// It can also enforce a floor on improvement versus an older baseline
// (locking in an optimization), via -min-speedup/-min-memratio with
// -improve naming the benches. Baselines are either benchgate JSON or
// raw `go test -bench` text (BENCH_4.json and earlier are raw text);
// the format is auto-detected. When a benchmark appears several times
// (-count>1), the minimum ns/op is kept, the standard noise filter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baselineFile struct {
	Note    string            `json:"note,omitempty"`
	Benches map[string]result `json:"benches"`
}

func main() {
	var (
		currentPath = flag.String("current", "-", "bench output to evaluate (file, or - for stdin)")
		emitPath    = flag.String("emit", "", "write the normalized JSON baseline here")
		basePath    = flag.String("baseline", "", "baseline to gate against (benchgate JSON or raw bench text)")
		maxRegress  = flag.Float64("max-regress", 0.15, "fail when ns/op grows by more than this fraction over the baseline")
		require     = flag.String("require", "", "comma-separated bench name prefixes that must exist and stay within -max-regress")
		minSpeedup  = flag.Float64("min-speedup", 0, "with -improve: fail unless baseline/current ns/op >= this ratio")
		minMemRatio = flag.Float64("min-memratio", 0, "with -improve: fail unless baseline/current B/op >= this ratio")
		improve     = flag.String("improve", "", "comma-separated bench name prefixes the speedup/memory floors apply to")
		note        = flag.String("note", "", "free-form note stored in the emitted baseline")
	)
	flag.Parse()
	if *emitPath == "" && *basePath == "" {
		fatal("nothing to do: give -emit and/or -baseline")
	}

	current, err := load(*currentPath)
	if err != nil {
		fatal("reading current bench output: %v", err)
	}
	if len(current) == 0 {
		fatal("no benchmark lines found in current output")
	}

	if *emitPath != "" {
		out := baselineFile{Note: *note, Benches: current}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*emitPath, append(buf, '\n'), 0o644); err != nil {
			fatal("writing %s: %v", *emitPath, err)
		}
		fmt.Printf("benchgate: wrote %d benches to %s\n", len(current), *emitPath)
	}
	if *basePath == "" {
		return
	}

	base, err := load(*basePath)
	if err != nil {
		fatal("reading baseline %s: %v", *basePath, err)
	}
	failed := false
	for _, name := range splitList(*require) {
		matches := resolve(current, name)
		if len(matches) == 0 {
			fmt.Printf("FAIL %s: required bench missing from current run\n", name)
			failed = true
			continue
		}
		for _, full := range matches {
			cur := current[full]
			b, ok := base[full]
			if !ok {
				fmt.Printf("ok   %s: %.0f ns/op (new, no baseline entry)\n", full, cur.NsPerOp)
				continue
			}
			ratio := cur.NsPerOp/b.NsPerOp - 1
			if ratio > *maxRegress {
				fmt.Printf("FAIL %s: %.0f ns/op vs baseline %.0f (+%.1f%% > %.0f%% allowed)\n",
					full, cur.NsPerOp, b.NsPerOp, 100*ratio, 100**maxRegress)
				failed = true
			} else {
				fmt.Printf("ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
					full, cur.NsPerOp, b.NsPerOp, 100*ratio)
			}
		}
	}
	for _, name := range splitList(*improve) {
		matches := resolve(current, name)
		if len(matches) == 0 {
			fmt.Printf("FAIL %s: improvement-gated bench missing from current run\n", name)
			failed = true
			continue
		}
		for _, full := range matches {
			cur, b, ok := current[full], base[full], true
			if _, ok = base[full]; !ok {
				fmt.Printf("FAIL %s: missing from baseline %s\n", full, *basePath)
				failed = true
				continue
			}
			if *minSpeedup > 0 {
				s := b.NsPerOp / cur.NsPerOp
				if s < *minSpeedup {
					fmt.Printf("FAIL %s: speedup %.2fx < required %.1fx (%.0f -> %.0f ns/op)\n",
						full, s, *minSpeedup, b.NsPerOp, cur.NsPerOp)
					failed = true
				} else {
					fmt.Printf("ok   %s: speedup %.2fx (>= %.1fx)\n", full, s, *minSpeedup)
				}
			}
			if *minMemRatio > 0 && cur.BytesPerOp > 0 {
				m := b.BytesPerOp / cur.BytesPerOp
				if m < *minMemRatio {
					fmt.Printf("FAIL %s: B/op only %.2fx lower, need %.1fx (%.0f -> %.0f B/op)\n",
						full, m, *minMemRatio, b.BytesPerOp, cur.BytesPerOp)
					failed = true
				} else {
					fmt.Printf("ok   %s: B/op %.2fx lower (>= %.1fx)\n", full, m, *minMemRatio)
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// resolve expands a short name ("Figure3", "CoverageStudy") to the full
// benchmark names it prefixes, sorted for stable output.
func resolve(set map[string]result, name string) []string {
	want := name
	if !strings.HasPrefix(want, "Benchmark") {
		want = "Benchmark" + want
	}
	var out []string
	for full := range set {
		if strings.HasPrefix(full, want) {
			out = append(out, full)
		}
	}
	sort.Strings(out)
	return out
}

// load reads a benchgate JSON baseline or raw `go test -bench` text,
// auto-detected by the leading byte.
func load(path string) (map[string]result, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var f baselineFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, err
		}
		return f.Benches, nil
	}
	return parseBenchText(trimmed), nil
}

// parseBenchText extracts benchmark result lines from go test output,
// ignoring everything else (log output, PASS lines, table dumps). A
// GOMAXPROCS suffix (BenchmarkFoo-8) is stripped so baselines written
// on different machines name the same benchmarks. Repeated entries keep
// the minimum ns/op.
func parseBenchText(text string) map[string]result {
	out := make(map[string]result)
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res result
		seenNs := false
		for j := 2; j+1 < len(f); j++ {
			v, err := strconv.ParseFloat(f[j], 64)
			if err != nil {
				continue
			}
			switch f[j+1] {
			case "ns/op":
				res.NsPerOp = v
				seenNs = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if !seenNs {
			continue
		}
		if prev, ok := out[name]; !ok || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	return out
}
