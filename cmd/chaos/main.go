// Command chaos replays deterministic fault-injection scenarios against
// the simulated measurement pipeline and checks the harness invariants:
// the no-fault path is bit-identical to the healthy path, every seed
// replays byte-identically, data loss is always flagged, and a changed
// answer is never silent. It exits non-zero if any invariant breaks.
//
// Usage:
//
//	chaos -seeds 8 -faults "drop=0.02,glitch=0.01,nodedrop=0.15"
//	chaos -seeds 4 -nodes 32 -duration 900 -faults "meterdrop=0.1"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"nodevar/internal/cli"
	"nodevar/internal/faults"
	"nodevar/internal/faults/chaostest"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		seeds      = flag.Int("seeds", 8, "number of consecutive seeds to replay")
		firstSeed  = flag.Uint64("first-seed", 1, "first seed of the range")
		nodes      = flag.Int("nodes", 16, "simulated cluster size")
		duration   = flag.Float64("duration", 600, "core-phase length in seconds")
		util       = flag.Float64("util", 0.8, "constant machine utilization")
		verbose    = flag.Bool("report", false, "print each seed's full outcome text")
		obsFlags   = cli.RegisterObsFlags()
		faultFlags = cli.RegisterFaultFlags()
		execFlags  = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}

	sched, err := faultFlags.Schedule()
	if err != nil {
		fatal(err)
	}
	run, err := obsFlags.Start("chaos")
	if err != nil {
		fatal(err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("seeds", *seeds)
	run.SetConfig("first_seed", *firstSeed)
	run.SetConfig("nodes", *nodes)
	run.SetConfig("duration_sec", *duration)
	run.SetConfig("util", *util)
	run.SetConfig("faults", sched.String())

	violations := 0
	replayed := 0
	var merged faults.Report
	merged.Completeness = 1
	for i := 0; i < *seeds; i++ {
		// Each seed is an independent replay, so a cancellation between
		// seeds loses nothing: the seeds already checked stand on their
		// own and the run reports how far it got.
		if err := ctx.Err(); err != nil {
			fmt.Printf("interrupted after %d of %d seeds\n", replayed, *seeds)
			run.SetFaults(merged.ManifestSection())
			return run.Close(err)
		}
		sc := chaostest.Scenario{
			Nodes:       *nodes,
			DurationSec: *duration,
			Util:        *util,
			Schedule:    sched,
		}
		sc.Schedule.Seed = *firstSeed + uint64(i)

		out, err := chaostest.Run(sc)
		if err != nil {
			return run.Close(err)
		}
		replay, err := chaostest.Run(sc)
		if err != nil {
			return run.Close(err)
		}
		merged.Merge(out.Report)
		replayed++

		bad := func(format string, args ...any) {
			violations++
			fmt.Printf("  INVARIANT VIOLATED: %s\n", fmt.Sprintf(format, args...))
		}
		fmt.Printf("seed %d: healthy %.1f W, degraded %.1f W, completeness %.4f, degraded=%v\n",
			sc.Schedule.Seed, float64(out.HealthyAvg), float64(out.DegradedAvg),
			out.Completeness, out.Degraded)
		if *verbose {
			fmt.Print(out.Text())
		}
		if out.Text() != replay.Text() {
			bad("seed %d did not replay byte-identically", sc.Schedule.Seed)
		}
		if sched.IsZero() && (out.DegradedAvg != out.HealthyAvg || out.Degraded) {
			bad("zero schedule was not a strict pass-through")
		}
		if out.DegradedAvg != out.HealthyAvg && !out.Degraded {
			bad("answer changed without a degradation flag (silent wrong answer)")
		}
		if v := float64(out.DegradedAvg); math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			bad("degraded estimate %v is not a usable number", v)
		}
	}

	run.SetFaults(merged.ManifestSection())
	if violations > 0 {
		fmt.Printf("%d invariant violation(s) across %d seeds\n", violations, *seeds)
		_ = run.Close(fmt.Errorf("%d invariant violation(s)", violations))
		return 1
	}
	fmt.Printf("all invariants held across %d seeds\n", *seeds)
	return run.Close(nil)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaos:", err)
	os.Exit(1)
}
