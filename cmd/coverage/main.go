// Command coverage runs the paper's Figure 3 bootstrap study: how well
// calibrated t-based confidence intervals are when estimating full-system
// power from n-node subsets of a simulated machine resampled from a pilot
// dataset.
//
// Usage:
//
//	coverage                                  # LRZ pilot defaults
//	coverage -replicates 100000 -n 3,5,10,20  # the paper's scale
//	coverage -system titan -population 18688
//	coverage -replicates 100000 -checkpoint cov.ckpt -resume
//
// SIGINT/SIGTERM cancel the study at the next chunk boundary, flushing
// the checkpoint (when configured) and an "interrupted" manifest before
// exiting 130; a second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"nodevar/internal/cli"
	"nodevar/internal/report"
	"nodevar/internal/sampling"
	"nodevar/internal/systems"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		system     = flag.String("system", "lrz", "system preset supplying the pilot dataset")
		pilotSize  = flag.Int("pilot", 516, "pilot sample size (0 = all measured nodes)")
		population = flag.Int("population", 0, "simulated machine size (0 = the system's node count)")
		replicates = flag.Int("replicates", 20000, "bootstrap replicates per point")
		seed       = flag.Uint64("seed", 2015, "random seed")
		nList      = flag.String("n", "3,5,10,15,20,30,50,100", "comma-separated subset sizes")
		levelList  = flag.String("levels", "0.80,0.95,0.99", "comma-separated confidence levels")
		obsFlags   = cli.RegisterObsFlags()
		execFlags  = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}

	run, err := obsFlags.Start("coverage")
	if err != nil {
		fatal(err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("system", *system)
	run.SetConfig("pilot", *pilotSize)
	run.SetConfig("replicates", *replicates)
	run.SetConfig("seed", *seed)
	run.SetConfig("n", *nList)
	run.SetConfig("levels", *levelList)

	spec, err := systems.ByKey(*system)
	if err != nil {
		fatal(err)
	}
	pilot, err := systems.PilotSample(spec, *seed, *pilotSize)
	if err != nil {
		fatal(err)
	}
	pop := *population
	if pop == 0 {
		pop = spec.TotalNodes
	}
	ns, err := cli.ParseInts(*nList)
	if err != nil {
		fatal(err)
	}
	levels, err := cli.ParseFloats(*levelList)
	if err != nil {
		fatal(err)
	}

	points, err := sampling.CoverageStudyCtx(ctx, sampling.CoverageConfig{
		Pilot:       pilot,
		Population:  pop,
		SampleSizes: ns,
		Levels:      levels,
		Replicates:  *replicates,
		Seed:        *seed,
		Checkpoint:  execFlags.Checkpoint,
		Resume:      execFlags.Resume,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return run.Close(err)
		}
		fatal(err)
	}

	headers := []string{"n"}
	for _, lv := range levels {
		headers = append(headers, fmt.Sprintf("%.0f%% coverage", lv*100))
	}
	t := report.NewTable(
		fmt.Sprintf("CI coverage: %d-node pilot from %s, simulated N = %d, %d replicates",
			len(pilot), spec.Name, pop, *replicates),
		headers...)
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, lv := range levels {
			for _, p := range points {
				if p.SampleSize == n && p.Level == lv {
					row = append(row, fmt.Sprintf("%.4f", p.Coverage))
				}
			}
		}
		t.AddRow(row...)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	return run.Close(nil)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coverage:", err)
	os.Exit(1)
}
