// Command powersim simulates a studied system's HPL run and reports its
// power profile: segment averages (Table 2 style), gaming exposure, and
// optionally the raw trace as CSV.
//
// Usage:
//
//	powersim -system lcsc
//	powersim -system pizdaint -csv trace.csv -samples 5000
//	powersim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"nodevar/internal/cli"
	"nodevar/internal/faults"
	"nodevar/internal/methodology"
	"nodevar/internal/power"
	"nodevar/internal/report"
	"nodevar/internal/rng"
	"nodevar/internal/systems"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		system     = flag.String("system", "lcsc", "system key (see -list)")
		samples    = flag.Int("samples", 2000, "trace resolution")
		csvPath    = flag.String("csv", "", "write the trace as CSV to this path")
		list       = flag.Bool("list", false, "list available systems")
		meterKey   = flag.String("meter", "", "re-measure the simulated trace through a meter preset (see -list-meters)")
		meterSeed  = flag.Uint64("meter-seed", 2015, "seed for the -meter instrument draw")
		listMeters = flag.Bool("list-meters", false, "list available meter presets")
		analyze    = flag.String("analyze", "", "analyze a time,power CSV trace instead of simulating")
		obsFlags   = cli.RegisterObsFlags()
		faultFlags = cli.RegisterFaultFlags()
		execFlags  = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}

	sched, err := faultFlags.Schedule()
	if err != nil {
		fatal(err)
	}

	run, err := obsFlags.Start("powersim")
	if err != nil {
		fatal(err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("system", *system)
	run.SetConfig("samples", *samples)
	if !sched.IsZero() {
		run.SetConfig("faults", sched.String())
	}

	if *analyze != "" {
		run.SetConfig("analyze", *analyze)
		return run.Close(analyzeCSV(*analyze, sched, run))
	}

	if *list {
		t := report.NewTable("Available systems", "Key", "Name", "Site", "Nodes", "Trace targets")
		for _, s := range systems.All() {
			hasTrace := "no"
			if s.Trace != nil {
				hasTrace = "yes"
			}
			t.AddRow(s.Key, s.Name, s.Site, fmt.Sprint(s.TotalNodes), hasTrace)
		}
		return run.Close(t.WriteText(os.Stdout))
	}

	if *listMeters {
		t := report.NewTable("Available meter presets", "Key", "Architecture", "Description")
		for _, p := range systems.MeterPresets() {
			t.AddRow(p.Key, p.Model.ModelName(), p.Description)
		}
		return run.Close(t.WriteText(os.Stdout))
	}

	spec, err := systems.ByKey(*system)
	if err != nil {
		return run.Close(err)
	}
	tr, cal, err := systems.CalibratedTrace(spec, *samples)
	if err != nil {
		return run.Close(err)
	}
	// A SIGINT during calibration (the expensive step) lands here; the
	// run unwinds with a manifest instead of printing half a report.
	if err := ctx.Err(); err != nil {
		return run.Close(err)
	}
	// Fault injection: with a zero schedule Apply returns tr itself and
	// Sanitize is skipped, so the fault-free output is byte-identical to
	// a run without -faults.
	tr, frep, err := sched.Apply(tr)
	if err != nil {
		return run.Close(err)
	}
	sanitized := 0
	if frep.Injected() {
		tr, sanitized, err = tr.Sanitize()
		if err != nil {
			return run.Close(err)
		}
		run.SetFaults(frep.ManifestSection())
	}
	rep, err := power.Segments(tr)
	if err != nil {
		return run.Close(err)
	}
	fmt.Printf("%s (%s)\n", spec.Name, spec.Site)
	fmt.Printf("  HPL runtime:        %.2f h (matrix order %d, Rmax %.1f TFLOPS)\n",
		rep.Duration/3600, cal.Run.Config.MatrixOrder, float64(cal.Run.Rmax)/1000)
	fmt.Printf("  core-phase power:   %s\n", rep.Core)
	fmt.Printf("  first 20%%:          %s\n", rep.First20)
	fmt.Printf("  last 20%%:           %s\n", rep.Last20)
	fmt.Printf("  segment spread:     %.1f%%\n", rep.MaxSpread()*100)
	fmt.Printf("  calibration error:  %.3f%% vs published Table 2 values\n", cal.MaxRelErr*100)

	gaming, err := methodology.AnalyzeGaming(spec.Name, tr)
	if err != nil {
		return run.Close(err)
	}
	fmt.Printf("  Level-1 gaming:     best window [%.0f s, %.0f s] reports %.1f%% less power (+%.1f%% efficiency)\n",
		gaming.WindowLo, gaming.WindowHi, gaming.PowerReduction*100, gaming.EfficiencyGain*100)
	printDegraded(frep, sanitized)

	if *meterKey != "" {
		preset, err := systems.MeterByKey(*meterKey)
		if err != nil {
			return run.Close(err)
		}
		run.SetConfig("meter", preset.Key)
		run.SetConfig("meter_seed", *meterSeed)
		inst, err := preset.Model.NewInstrument(rng.New(*meterSeed))
		if err != nil {
			return run.Close(err)
		}
		trueAvg, err := tr.AverageBetween(tr.Start(), tr.End())
		if err != nil {
			return run.Close(err)
		}
		reported, err := inst.AveragePower(tr, tr.Start(), tr.End())
		if err != nil {
			return run.Close(err)
		}
		shift := (float64(reported) - float64(trueAvg)) / float64(trueAvg)
		fmt.Printf("  meter %-12s  reports %.1f kW vs true %.1f kW (%+.2f%% — %s architecture)\n",
			preset.Key+":", reported.Kilowatts(), trueAvg.Kilowatts(), shift*100, preset.Model.ModelName())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return run.Close(err)
		}
		defer f.Close()
		t := report.NewTable("", "time_s", "power_w")
		for _, s := range tr.Samples() {
			t.AddRow(fmt.Sprintf("%.2f", s.Time), fmt.Sprintf("%.1f", float64(s.Power)))
		}
		if err := t.WriteCSV(f); err != nil {
			return run.Close(err)
		}
		fmt.Printf("  trace written:      %s (%d samples)\n", *csvPath, tr.Len())
	}
	return run.Close(nil)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powersim:", err)
	os.Exit(1)
}

// minWindowSamples is the fewest samples a 20% Level-1 window should
// contain before its average is trusted: below this, sampling cadence —
// not the machine — dominates what the window reports (the
// nvidia-smi-style pitfall of unobserved sampling resolution).
const minWindowSamples = 10

// analyzeCSV runs the segment and gaming analysis on a user-supplied
// time,power CSV trace — the same analysis the paper applies to the
// Green500's published run data. It reports the trace's sampling
// cadence and warns when the trace is too coarse to resolve a 20%
// Level-1 measurement window. A non-zero fault schedule corrupts the
// trace before analysis (replaying a chaos scenario against real data);
// degraded input — injected or present in the CSV itself as NaN
// readings or sampling gaps — is flagged, never silently analyzed as
// clean.
func analyzeCSV(path string, sched faults.Schedule, run *cli.Run) error {
	log := run.Log
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := power.ReadCSV(f)
	if err != nil {
		return err
	}
	tr, frep, err := sched.Apply(tr)
	if err != nil {
		return err
	}
	if frep.Injected() {
		run.SetFaults(frep.ManifestSection())
	}
	// Real collectors emit NaN glitches too; drop them so the analysis
	// can proceed, and report the loss below. A clean trace passes
	// through untouched (the same pointer).
	tr, sanitized, err := tr.Sanitize()
	if err != nil {
		return err
	}
	rep, err := power.Segments(tr)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d samples over %.1f s\n", path, tr.Len(), tr.Duration())

	// Sampling-cadence report: the mean interval plus the largest gap,
	// then how many samples actually land inside a 20% window.
	meanInterval := tr.Duration() / float64(tr.Len()-1)
	var maxGap float64
	ts := tr.Samples()
	for i := 1; i < len(ts); i++ {
		if gap := ts[i].Time - ts[i-1].Time; gap > maxGap {
			maxGap = gap
		}
	}
	window := 0.2 * tr.Duration()
	perWindow := window / meanInterval
	fmt.Printf("  sampling:           %d samples, mean interval %.2f s (max gap %.2f s), ~%.0f samples per 20%% window\n",
		tr.Len(), meanInterval, maxGap, perWindow)
	if perWindow < minWindowSamples {
		log.Warn("trace too coarse to resolve a 20% Level-1 window",
			"samples", tr.Len(),
			"mean_interval_s", meanInterval,
			"max_gap_s", maxGap,
			"window_s", window,
			"samples_per_window", perWindow,
			"min_samples_per_window", minWindowSamples)
	}

	// Gap-aware completeness: treat anything over 5x the mean cadence as
	// a data gap (a dropped-sample window, not just slow sampling). The
	// tolerant query delegates to the exact fast path when the trace has
	// no gaps, so clean traces produce byte-identical reports.
	_, wq, err := tr.AverageBetweenTolerant(tr.Start(), tr.End(), 5*meanInterval)
	if err != nil {
		return err
	}
	degradedInput := wq.Gaps > 0 || sanitized > 0 || frep.Injected()
	if degradedInput {
		fmt.Printf("  data quality:       %.1f%% complete (%d gaps, longest %.1f s, %d non-finite readings removed)\n",
			wq.Completeness*100, wq.Gaps, wq.LongestGap, sanitized)
		log.Warn("trace is incomplete; all figures are best-effort estimates",
			"completeness", wq.Completeness,
			"gaps", wq.Gaps,
			"longest_gap_s", wq.LongestGap,
			"sanitized", sanitized)
	}

	fmt.Printf("  core-phase power:   %s\n", rep.Core)
	fmt.Printf("  first 20%%:          %s\n", rep.First20)
	fmt.Printf("  last 20%%:           %s\n", rep.Last20)
	fmt.Printf("  segment spread:     %.1f%%\n", rep.MaxSpread()*100)
	gaming, err := methodology.AnalyzeGaming(path, tr)
	if err != nil {
		return err
	}
	fmt.Printf("  Level-1 gaming:     best window [%.0f s, %.0f s] reports %.1f%% less power (+%.1f%% efficiency)\n",
		gaming.WindowLo, gaming.WindowHi, gaming.PowerReduction*100, gaming.EfficiencyGain*100)
	printDegraded(frep, sanitized)
	return nil
}

// printDegraded appends the degraded-measurement statement when faults
// were injected. Fault-free runs print nothing, keeping their output
// byte-identical to a build without fault injection.
func printDegraded(frep *faults.Report, sanitized int) {
	if frep == nil || !frep.Injected() {
		return
	}
	fmt.Printf("  faults injected:    %s\n", frep.Schedule)
	fmt.Printf("  DEGRADED:           completeness %.1f%% (%d samples dropped, %d stuck, %d glitched, %d removed as non-finite) — figures above are best-effort estimates\n",
		frep.Completeness*100, frep.DroppedSamples, frep.StuckSamples,
		frep.GlitchNaN+frep.GlitchSpike, sanitized)
}
