// Command nodevard serves the paper's sampling methodology as a
// long-lived HTTP JSON API: sample-size planning (/v1/samplesize),
// expected-accuracy queries (/v1/accuracy), the Table 5 grid
// (/v1/table5), the Level-1 versus revised subset rules (/v1/rules) and
// the Figure 3 bootstrap coverage study (/v1/coverage), and live
// streaming fleet ingestion (/v1/ingest plus the /v1/fleet/{id}/stats,
// /samplesize and /outliers views), with coalesced result caching, 429
// load shedding and per-request timeouts.
//
// Usage:
//
//	nodevard                              # listen on :8080
//	nodevard -addr 127.0.0.1:0            # ephemeral port (printed on stdout)
//	nodevard -max-concurrent 128 -request-timeout 2m
//	nodevard -manifest-dir ./manifests    # one run record per coverage study
//
// The first SIGINT/SIGTERM starts a graceful drain: the listener closes
// immediately (new requests are refused), in-flight requests get
// -drain-timeout to finish, and the process exits 130 with an
// "interrupted" run manifest, matching the repo-wide signal convention;
// a second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nodevar/internal/cli"
	"nodevar/internal/obs"
	"nodevar/internal/server"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr          = flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		maxConc       = flag.Int("max-concurrent", 64, "in-flight /v1/ request cap; excess requests are shed with 429")
		reqTimeout    = flag.Duration("request-timeout", 60*time.Second, "per-request budget; 0 disables")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight requests after a shutdown signal")
		maxReplicates = flag.Int("max-replicates", 200000, "largest /v1/coverage replicate count accepted")
		maxPopulation = flag.Int("max-population", 1_000_000_000, "sanity cap on the /v1/coverage simulated machine size (the count-based study never materializes it)")
		cacheEntries  = flag.Int("cache-entries", 128, "completed coverage results kept in memory")
		manifestDir   = flag.String("manifest-dir", "", "write one manifest-v3 run record per computed coverage study here")
		traceRing     = flag.Int("trace-ring", 256, "recent request traces retained for GET /v1/trace/{id}; 0 disables request tracing")
		runtimeSample = flag.Duration("runtime-sample", 10*time.Second, "background runtime gauge sampling interval; 0 samples only on /metrics scrapes")
		sloObjective  = flag.Float64("slo-objective", 0.99, "per-endpoint SLO success-fraction objective behind the error-budget readiness check")
		maxFleets     = flag.Int("max-fleets", 64, "live streaming fleets tracked; past the cap the least-recently-ingested fleet is evicted")
		fleetWindow   = flag.Duration("fleet-window", 5*time.Minute, "rolling-statistics span of each fleet's windowed view")
		ingestBatch   = flag.Int("ingest-max-batch", 4096, "largest /v1/ingest sample batch accepted")
		accessLogs    = flag.Bool("access-log", true, "emit one structured log line per API request")
		obsFlags      = cli.RegisterObsFlags()
		execFlags     = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}

	run, err := obsFlags.Start("nodevard")
	if err != nil {
		fatal(err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("addr", *addr)
	run.SetConfig("max_concurrent", *maxConc)
	run.SetConfig("request_timeout", reqTimeout.String())
	run.SetConfig("max_replicates", *maxReplicates)
	run.SetConfig("max_population", *maxPopulation)
	run.SetConfig("trace_ring", *traceRing)
	run.SetConfig("slo_objective", *sloObjective)
	run.SetConfig("max_fleets", *maxFleets)
	run.SetConfig("fleet_window", fleetWindow.String())
	run.SetConfig("ingest_max_batch", *ingestBatch)

	if *runtimeSample > 0 {
		stopSampler := obs.StartRuntimeSampler(*runtimeSample)
		defer stopSampler()
	}

	// The server's lifecycle context outlives the signal context: drain
	// first (in-flight coverage studies finish and get cached), cancel
	// whatever is left only if the grace period runs out.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	cfg := server.Config{
		MaxConcurrent:  *maxConc,
		RequestTimeout: *reqTimeout,
		MaxReplicates:  *maxReplicates,
		MaxPopulation:  *maxPopulation,
		CacheEntries:   *cacheEntries,
		ManifestDir:    *manifestDir,
		BaseContext:    baseCtx,
		Log:            run.Log,
		TraceCapacity:  *traceRing,
		DisableTracing: *traceRing <= 0,
		SLOObjective:   *sloObjective,
		MaxFleets:      *maxFleets,
		FleetWindow:    *fleetWindow,
		IngestMaxBatch: *ingestBatch,
	}
	if *accessLogs {
		// Access logs share the run logger, so -log-format json yields
		// machine-parseable JSON lines with trace ID and cache outcome.
		cfg.AccessLog = run.Log
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return run.Close(err)
	}
	// Stdout so scripts (and the integration test) can discover an
	// ephemeral port.
	fmt.Printf("nodevard listening on %s\n", ln.Addr())
	run.Log.Info("nodevard listening", "addr", ln.Addr().String())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed outright; nothing to drain.
		baseCancel()
		return run.Close(err)
	case <-ctx.Done():
	}

	run.Log.Info("draining", "grace", drainTimeout.String())
	srv.BeginDrain() // readiness flips to draining before the listener closes
	sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer scancel()
	if derr := hs.Shutdown(sctx); derr != nil {
		run.Log.Warn("drain incomplete; closing remaining connections", "err", derr)
		baseCancel() // stop abandoned coverage studies at their next chunk
		hs.Close()
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		run.Log.Error("serve loop error", "err", serr)
	}
	return run.Close(ctx.Err())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nodevard:", err)
	os.Exit(1)
}
