// Command nodevard serves the paper's sampling methodology as a
// long-lived HTTP JSON API: sample-size planning (/v1/samplesize),
// expected-accuracy queries (/v1/accuracy), the Table 5 grid
// (/v1/table5), the Level-1 versus revised subset rules (/v1/rules) and
// the Figure 3 bootstrap coverage study (/v1/coverage), and live
// streaming fleet ingestion (/v1/ingest plus the /v1/fleet/{id}/stats,
// /samplesize and /outliers views), with coalesced result caching, 429
// load shedding and per-request timeouts.
//
// nodevard also scales out: `-role=worker` turns the process into a
// stateless coverage compute worker speaking the internal/dist job
// protocol, and `-workers` pointed at a fleet of those turns the API
// server into a distributed frontend that consistent-hashes each study
// onto the fleet, streams checkpointed progress back, fails over to a
// survivor when a worker dies mid-study (resuming byte-identically from
// the last streamed checkpoint), and degrades to in-process compute —
// flagged, never an outage — when no workers are live.
//
// Usage:
//
//	nodevard                              # listen on :8080
//	nodevard -addr 127.0.0.1:0            # ephemeral port (printed on stdout)
//	nodevard -max-concurrent 128 -request-timeout 2m
//	nodevard -manifest-dir ./manifests    # one run record per coverage study
//	nodevard -role=worker -addr :9090     # coverage compute worker
//	nodevard -workers http://h1:9090,http://h2:9090   # frontend over a fleet
//
// The first SIGINT/SIGTERM starts a graceful drain: the listener closes
// immediately (new requests are refused), in-flight requests get
// -drain-timeout to finish, and the process exits 130 with an
// "interrupted" run manifest, matching the repo-wide signal convention;
// a second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"nodevar/internal/cli"
	"nodevar/internal/dist"
	"nodevar/internal/obs"
	"nodevar/internal/server"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr          = flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		maxConc       = flag.Int("max-concurrent", 64, "in-flight /v1/ request cap; excess requests are shed with 429")
		reqTimeout    = flag.Duration("request-timeout", 60*time.Second, "per-request budget; 0 disables")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight requests after a shutdown signal")
		maxReplicates = flag.Int("max-replicates", 200000, "largest /v1/coverage replicate count accepted")
		maxPopulation = flag.Int("max-population", 1_000_000_000, "sanity cap on the /v1/coverage simulated machine size (the count-based study never materializes it)")
		maxDistNodes  = flag.Int("max-distortion-nodes", 256, "largest simulated cluster a /v1/distortion meter study may ask for (one power trace per node)")
		cacheEntries  = flag.Int("cache-entries", 128, "completed coverage results kept in memory")
		manifestDir   = flag.String("manifest-dir", "", "write one manifest-v3 run record per computed coverage study here")
		traceRing     = flag.Int("trace-ring", 256, "recent request traces retained for GET /v1/trace/{id}; 0 disables request tracing")
		runtimeSample = flag.Duration("runtime-sample", 10*time.Second, "background runtime gauge sampling interval; 0 samples only on /metrics scrapes")
		sloObjective  = flag.Float64("slo-objective", 0.99, "per-endpoint SLO success-fraction objective behind the error-budget readiness check")
		maxFleets     = flag.Int("max-fleets", 64, "live streaming fleets tracked; past the cap the least-recently-ingested fleet is evicted")
		fleetWindow   = flag.Duration("fleet-window", 5*time.Minute, "rolling-statistics span of each fleet's windowed view")
		ingestBatch   = flag.Int("ingest-max-batch", 4096, "largest /v1/ingest sample batch accepted")
		accessLogs    = flag.Bool("access-log", true, "emit one structured log line per API request")

		role          = flag.String("role", "api", `process role: "api" serves the JSON API, "worker" serves the distributed coverage compute tier`)
		workers       = flag.String("workers", "", "comma-separated worker base URLs; when set, /v1/coverage studies run on the fleet with checkpointed failover (api role only)")
		probeInterval = flag.Duration("probe-interval", time.Second, "worker health-probe cadence and initial reconnect backoff (frontend)")
		distTimeout   = flag.Duration("dist-job-timeout", 0, "per-worker dispatch budget for one coverage job; 0 leaves the request budget as the only bound (frontend)")
		distCkEvery   = flag.Int("dist-checkpoint-every", 4, "streamed-progress cadence in completed chunks requested of workers (frontend)")
		workerJobs    = flag.Int("worker-max-jobs", 4, "concurrent coverage studies per worker; excess jobs queue (worker role)")
		workerCache   = flag.Int("worker-cache", 64, "completed jobs remembered for idempotent replay (worker role)")
		chunkDelay    = flag.Duration("worker-chunk-delay", 0, "sleep after each completed chunk; chaos/scaling harness knob, leave 0 in production (worker role)")

		obsFlags  = cli.RegisterObsFlags()
		execFlags = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}
	if *role != "api" && *role != "worker" {
		fatal(fmt.Errorf("unknown -role %q (want api or worker)", *role))
	}

	run, err := obsFlags.Start("nodevard")
	if err != nil {
		fatal(err)
	}
	ctx, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("role", *role)

	if *role == "worker" {
		if *runtimeSample > 0 {
			stopSampler := obs.StartRuntimeSampler(*runtimeSample)
			defer stopSampler()
		}
		run.SetConfig("addr", *addr)
		run.SetConfig("worker_max_jobs", *workerJobs)
		run.SetConfig("worker_chunk_delay", chunkDelay.String())
		return runWorker(run, ctx, *addr, *drainTimeout, dist.WorkerConfig{
			MaxConcurrent: *workerJobs,
			CacheEntries:  *workerCache,
			ChunkDelay:    *chunkDelay,
			Log:           run.Log,
		})
	}

	run.SetConfig("addr", *addr)
	run.SetConfig("max_concurrent", *maxConc)
	run.SetConfig("request_timeout", reqTimeout.String())
	run.SetConfig("max_replicates", *maxReplicates)
	run.SetConfig("max_population", *maxPopulation)
	run.SetConfig("trace_ring", *traceRing)
	run.SetConfig("slo_objective", *sloObjective)
	run.SetConfig("max_fleets", *maxFleets)
	run.SetConfig("fleet_window", fleetWindow.String())
	run.SetConfig("ingest_max_batch", *ingestBatch)

	if *runtimeSample > 0 {
		stopSampler := obs.StartRuntimeSampler(*runtimeSample)
		defer stopSampler()
	}

	// The server's lifecycle context outlives the signal context: drain
	// first (in-flight coverage studies finish and get cached), cancel
	// whatever is left only if the grace period runs out.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	cfg := server.Config{
		MaxConcurrent:      *maxConc,
		RequestTimeout:     *reqTimeout,
		MaxReplicates:      *maxReplicates,
		MaxPopulation:      *maxPopulation,
		MaxDistortionNodes: *maxDistNodes,
		CacheEntries:       *cacheEntries,
		ManifestDir:        *manifestDir,
		BaseContext:        baseCtx,
		Log:                run.Log,
		TraceCapacity:      *traceRing,
		DisableTracing:     *traceRing <= 0,
		SLOObjective:       *sloObjective,
		MaxFleets:          *maxFleets,
		FleetWindow:        *fleetWindow,
		IngestMaxBatch:     *ingestBatch,
	}
	if *accessLogs {
		// Access logs share the run logger, so -log-format json yields
		// machine-parseable JSON lines with trace ID and cache outcome.
		cfg.AccessLog = run.Log
	}
	if *workers != "" {
		fleet := strings.Split(*workers, ",")
		for i := range fleet {
			fleet[i] = strings.TrimSpace(fleet[i])
		}
		fe, err := dist.NewFrontend(dist.Config{
			Workers:         fleet,
			ProbeInterval:   *probeInterval,
			JobTimeout:      *distTimeout,
			CheckpointEvery: *distCkEvery,
			Log:             run.Log,
		})
		if err != nil {
			return run.Close(err)
		}
		// The probe loop lives on the server lifecycle context, so it keeps
		// watching the fleet through a drain (in-flight studies may still
		// need a failover target) and stops with everything else.
		fe.Start(baseCtx)
		cfg.Dist = fe
		run.SetConfig("workers", fleet)
		run.Log.Info("distributed coverage enabled", "workers", len(fleet))
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return run.Close(err)
	}
	// Stdout so scripts (and the integration test) can discover an
	// ephemeral port.
	fmt.Printf("nodevard listening on %s\n", ln.Addr())
	run.Log.Info("nodevard listening", "addr", ln.Addr().String())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed outright; nothing to drain.
		baseCancel()
		return run.Close(err)
	case <-ctx.Done():
	}

	run.Log.Info("draining", "grace", drainTimeout.String())
	srv.BeginDrain() // readiness flips to draining before the listener closes
	sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer scancel()
	if derr := hs.Shutdown(sctx); derr != nil {
		run.Log.Warn("drain incomplete; closing remaining connections", "err", derr)
		baseCancel() // stop abandoned coverage studies at their next chunk
		hs.Close()
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		run.Log.Error("serve loop error", "err", serr)
	}
	return run.Close(ctx.Err())
}

// runWorker serves the distributed coverage compute tier: the
// internal/dist job protocol plus /metrics and the health probe. Same
// signal convention as the API role — first signal drains, exit 130.
func runWorker(run *cli.Run, ctx context.Context, addr string, drainTimeout time.Duration, wcfg dist.WorkerConfig) int {
	w := dist.NewWorker(wcfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return run.Close(err)
	}
	// Same stdout discovery line as the API role, so harnesses parse one
	// format regardless of role.
	fmt.Printf("nodevard listening on %s\n", ln.Addr())
	run.Log.Info("nodevard worker listening", "addr", ln.Addr().String())

	hs := &http.Server{Handler: w.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return run.Close(err)
	case <-ctx.Done():
	}

	run.Log.Info("worker draining", "grace", drainTimeout.String())
	sctx, scancel := context.WithTimeout(context.Background(), drainTimeout)
	defer scancel()
	if derr := hs.Shutdown(sctx); derr != nil {
		run.Log.Warn("worker drain incomplete; closing remaining connections", "err", derr)
		hs.Close()
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		run.Log.Error("worker serve loop error", "err", serr)
	}
	return run.Close(ctx.Err())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nodevard:", err)
	os.Exit(1)
}
