// Command green500 builds and validates a miniature Green500/Top500 list.
//
// Usage:
//
//	green500                       # rank the built-in Nov 2014 top 10
//	green500 -in subs.json         # rank submissions from a JSON file
//	green500 -validate revised     # check every entry against the new rules
//	green500 -top500               # rank by performance instead
package main

import (
	"flag"
	"fmt"
	"os"

	"nodevar/internal/cli"
	"nodevar/internal/green500"
	"nodevar/internal/methodology"
	"nodevar/internal/report"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		in        = flag.String("in", "", "JSON file of submissions (default: built-in Nov 2014 top 10)")
		validate  = flag.String("validate", "", "validate entries against: level1, level2, level3, revised")
		top500    = flag.Bool("top500", false, "rank by Rmax (Top500 style) instead of efficiency")
		csvOut    = flag.String("csv", "", "write the ranked list as CSV to this path")
		trend     = flag.Bool("trend", false, "print the Green500 #1 efficiency trend 2007-2014")
		obsFlags  = cli.RegisterObsFlags()
		execFlags = cli.RegisterExecFlags()
	)
	flag.Parse()
	if err := execFlags.Validate(); err != nil {
		fatal(err)
	}

	run, err := obsFlags.Start("green500")
	if err != nil {
		fatal(err)
	}
	_, stop := run.Context(execFlags)
	defer stop()
	run.SetConfig("in", *in)
	run.SetConfig("validate", *validate)
	run.SetConfig("top500", *top500)

	if *trend {
		t := report.NewTable("Green500 #1 efficiency by edition", "Edition", "MFLOPS/W")
		for _, p := range green500.EfficiencyTrend() {
			t.AddRow(p.Edition, fmt.Sprintf("%.1f", p.BestMFlopsPerWatt))
		}
		if err := t.WriteText(os.Stdout); err != nil {
			return run.Close(err)
		}
		if rate, err := green500.TrendGrowthRate(green500.EfficiencyTrend()); err == nil {
			fmt.Printf("fitted annual growth: %.2fx\n", rate)
		}
		return run.Close(nil)
	}

	subs := green500.Nov2014Top10()
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return run.Close(err)
		}
		subs, err = green500.ReadSubmissions(f)
		f.Close()
		if err != nil {
			return run.Close(err)
		}
	}
	list, err := green500.NewList(subs)
	if err != nil {
		return run.Close(err)
	}

	entries := list.Entries
	title := "Green500 ranking (GFLOPS/W)"
	if *top500 {
		entries = list.RankByPerformance()
		title = "Top500 ranking (Rmax)"
	}
	t := report.NewTable(title, "Rank", "System", "Site", "Rmax (TFLOPS)", "Power (kW)", "MFLOPS/W")
	for _, e := range entries {
		t.AddRow(fmt.Sprint(e.Rank), e.System, e.Site,
			fmt.Sprintf("%.1f", e.RmaxGFlops/1000),
			fmt.Sprintf("%.1f", e.PowerWatts/1000),
			fmt.Sprintf("%.1f", e.MFlopsPerWatt()))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return run.Close(err)
	}

	if margin, err := list.Margin(1, 3); err == nil {
		fmt.Printf("\n#1 efficiency advantage over #3: %.1f%% (measurement variability can exceed 20%%)\n", margin*100)
	}
	c := list.Compose()
	fmt.Printf("provenance: %d entries, %d derived, %d Level 1, %d Level 2+\n",
		c.Total, c.Derived, c.Level1, c.Level2Up)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return run.Close(err)
		}
		if err := list.WriteCSV(f); err != nil {
			f.Close()
			return run.Close(err)
		}
		if err := f.Close(); err != nil {
			return run.Close(err)
		}
		fmt.Printf("list written to %s\n", *csvOut)
	}

	if *validate != "" {
		spec, err := specFor(*validate)
		if err != nil {
			return run.Close(err)
		}
		fmt.Printf("\nvalidation against %s:\n", *validate)
		clean := true
		for _, e := range list.Entries {
			for _, verr := range green500.ValidateAgainst(e.Submission, spec) {
				fmt.Printf("  %s\n", verr)
				clean = false
			}
		}
		if clean {
			fmt.Println("  all entries compliant")
		}
	}
	return run.Close(nil)
}

func specFor(name string) (methodology.Spec, error) {
	switch name {
	case "level1":
		return methodology.LevelSpec(methodology.Level1)
	case "level2":
		return methodology.LevelSpec(methodology.Level2)
	case "level3":
		return methodology.LevelSpec(methodology.Level3)
	case "revised":
		return methodology.RevisedLevel1(), nil
	default:
		return methodology.Spec{}, fmt.Errorf("unknown spec %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "green500:", err)
	os.Exit(1)
}
