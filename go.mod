module nodevar

go 1.22
