package nodevar_test

// End-to-end failover suite for the distributed coverage engine: real
// nodevard processes — a frontend and a worker fleet — with a worker
// SIGKILLed mid-study. The contract under test: the study completes on
// a survivor byte-identical to a plain single-process nodevard's
// answer, no request ever sees a 5xx, and with the whole fleet dead the
// frontend still answers — locally computed and flagged degraded.
//
// The suite is seeded (four study seeds per the acceptance gate) and
// event-driven: the kill targets whichever worker's /metrics shows an
// active job, not a guess based on timing.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nodevar/internal/obs"
)

// lockedBuf is a Writer safe to read while the subprocess is still
// writing (exec.Cmd copies stderr from a goroutine).
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// distProc is one running nodevard (either role) with its discovered
// base URL.
type distProc struct {
	cmd    *exec.Cmd
	url    string
	done   chan error
	stderr *lockedBuf
	killed bool
}

// startNodevard boots one nodevard process on an ephemeral port and
// parses the base URL from the stdout discovery line. The process is
// SIGKILLed at test cleanup unless the test already took it down.
func startNodevard(t *testing.T, bin string, args ...string) *distProc {
	t.Helper()
	p := &distProc{stderr: &lockedBuf{}, done: make(chan error, 1)}
	p.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	p.cmd.Stderr = p.stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { p.done <- p.cmd.Wait() }()
	t.Cleanup(func() { p.kill(t) })

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("nodevard %v produced no startup line\n%s", args, p.stderr.String())
	}
	const prefix = "nodevard listening on "
	line := sc.Text()
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("startup line %q, want %q prefix", line, prefix)
	}
	p.url = "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
	go io.Copy(io.Discard, stdout)
	return p
}

// kill SIGKILLs the process and reaps it; idempotent.
func (p *distProc) kill(t *testing.T) {
	t.Helper()
	if p.killed {
		return
	}
	p.killed = true
	p.cmd.Process.Kill()
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		t.Errorf("process %d did not exit after SIGKILL", p.cmd.Process.Pid)
	}
}

// promValue scrapes url/metrics and sums the samples of one family.
// Missing families read as 0 (a counter that never incremented is not
// exported).
func promValue(t *testing.T, url, family string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse %s/metrics: %v", url, err)
	}
	f, ok := fams[family]
	if !ok {
		return 0
	}
	var sum float64
	for _, s := range f.Samples {
		sum += s.Value
	}
	return sum
}

// distStudyBody renders the deterministic custom-pilot study the suite
// runs; the per-request identity is the seed.
func distStudyBody(seed uint64) string {
	return fmt.Sprintf(`{"pilot_data":[201.5,205.25,199.125,210.0625,203.5,207.25,198.75,212.5,204.0,206.125,200.5,208.25],"population":2000,"sample_sizes":[4,8],"levels":[0.9],"replicates":400,"seed":%d}`, seed)
}

// postCoverage posts one study and returns status and body.
func postCoverage(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/coverage", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/v1/coverage: %v", base, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestDistFailoverE2E is the acceptance gate for the distributed
// engine, run once per study seed: boot a frontend over two workers
// slowed enough that a study spans real wall-clock, SIGKILL whichever
// worker is computing mid-study, and require every in-flight request to
// complete 200 — non-degraded, byte-identical to a plain no-fleet
// nodevard — with the kill visible only in the frontend's reroute
// counter. Then kill the survivor too and require the next study to
// come back 200 with the degraded flag, its points still identical.
func TestDistFailoverE2E(t *testing.T) {
	dir := buildCmds(t)
	nodevard := filepath.Join(dir, "nodevard")

	// One plain single-process server provides the reference bytes.
	ref := startNodevard(t, nodevard)

	for _, seed := range []uint64{1, 7, 2015, 90125} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			workers := []*distProc{
				startNodevard(t, nodevard, "-role=worker", "-worker-chunk-delay", "10ms"),
				startNodevard(t, nodevard, "-role=worker", "-worker-chunk-delay", "10ms"),
			}
			fe := startNodevard(t, nodevard,
				"-workers", workers[0].url+","+workers[1].url,
				"-probe-interval", "250ms",
				"-dist-checkpoint-every", "1")

			// Three concurrent studies: at 64 chunks x 10ms each spans
			// ~640ms of wall-clock, a wide-open window for the kill.
			seeds := []uint64{seed, seed + 1000003, seed + 2000003}
			type result struct {
				status int
				body   []byte
			}
			results := make([]result, len(seeds))
			var wg sync.WaitGroup
			for i, s := range seeds {
				wg.Add(1)
				go func(i int, s uint64) {
					defer wg.Done()
					results[i].status, results[i].body = postCoverage(t, fe.url, distStudyBody(s))
				}(i, s)
			}

			// Event-driven kill: SIGKILL whichever worker's metrics show a
			// job actually computing.
			victim := -1
			deadline := time.Now().Add(10 * time.Second)
			for victim < 0 {
				if time.Now().After(deadline) {
					t.Fatalf("no worker ever showed an active job\nfrontend stderr:\n%s", fe.stderr.String())
				}
				for i, w := range workers {
					if promValue(t, w.url, "dist_worker_active_jobs") >= 1 {
						victim = i
						break
					}
				}
				if victim < 0 {
					time.Sleep(10 * time.Millisecond)
				}
			}
			workers[victim].kill(t)
			t.Logf("SIGKILLed worker %d mid-study", victim)

			wg.Wait()
			for i, s := range seeds {
				if results[i].status != http.StatusOK {
					t.Fatalf("study seed=%d answered %d during failover (want 200, zero 5xx)\n%s\nfrontend stderr:\n%s",
						s, results[i].status, results[i].body, fe.stderr.String())
				}
				if bytes.Contains(results[i].body, []byte(`"degraded":true`)) {
					t.Fatalf("study seed=%d flagged degraded with a live survivor:\n%s", s, results[i].body)
				}
				refStatus, refBody := postCoverage(t, ref.url, distStudyBody(s))
				if refStatus != http.StatusOK {
					t.Fatalf("reference study seed=%d: %d\n%s", s, refStatus, refBody)
				}
				if !bytes.Equal(results[i].body, refBody) {
					t.Fatalf("failover answer for seed=%d is not byte-identical to the single-process answer:\n%s\nvs\n%s",
						s, results[i].body, refBody)
				}
			}
			if v := promValue(t, fe.url, "dist_jobs_rerouted"); v < 1 {
				t.Fatalf("dist_jobs_rerouted = %v after a mid-study kill, want >= 1", v)
			}

			// Take the survivor down too: the next study must still answer,
			// locally computed and flagged, with identical points.
			workers[1-victim].kill(t)
			degSeed := seed + 3000003
			status, body := postCoverage(t, fe.url, distStudyBody(degSeed))
			if status != http.StatusOK {
				t.Fatalf("all-workers-dead study answered %d (want 200 degraded)\n%s", status, body)
			}
			var deg, refResp struct {
				Degraded bool              `json:"degraded"`
				Points   []json.RawMessage `json:"points"`
			}
			if err := json.Unmarshal(body, &deg); err != nil {
				t.Fatal(err)
			}
			if !deg.Degraded {
				t.Fatalf("all-workers-dead response not flagged degraded:\n%s", body)
			}
			_, refBody := postCoverage(t, ref.url, distStudyBody(degSeed))
			if err := json.Unmarshal(refBody, &refResp); err != nil {
				t.Fatal(err)
			}
			if len(deg.Points) != len(refResp.Points) {
				t.Fatalf("%d degraded points vs %d reference", len(deg.Points), len(refResp.Points))
			}
			for i := range deg.Points {
				if !bytes.Equal(deg.Points[i], refResp.Points[i]) {
					t.Fatalf("degraded point %d differs from reference:\n%s\nvs\n%s", i, deg.Points[i], refResp.Points[i])
				}
			}
			if v := promValue(t, fe.url, "dist_jobs_degraded_local"); v < 1 {
				t.Fatalf("dist_jobs_degraded_local = %v after an all-dead fleet, want >= 1", v)
			}
			if v := promValue(t, fe.url, "dist_workers_live"); v != 0 {
				t.Fatalf("dist_workers_live = %v with every worker SIGKILLed, want 0", v)
			}

			// The frontend itself still drains cleanly per the repo-wide
			// signal convention.
			if err := fe.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			select {
			case <-fe.done:
				fe.killed = true
			case <-time.After(time.Minute):
				t.Fatalf("frontend did not exit after SIGTERM\n%s", fe.stderr.String())
			}
			if code := fe.cmd.ProcessState.ExitCode(); code != 130 {
				t.Fatalf("frontend exit code %d after SIGTERM, want 130\n%s", code, fe.stderr.String())
			}
		})
	}
}

// TestDistScalingGate proves the split actually scales: the same
// open-loop load offered to a one-worker frontend and a four-worker
// frontend must complete at least twice as many studies on the bigger
// fleet, with zero 5xx on either. Workers carry a 10ms chunk delay so a
// study costs ~640ms of wall-clock regardless of CPU — the gate
// measures the architecture, not the machine. Gated behind
// NODEVAR_DIST_SCALE=1 because it holds ~12s of load.
func TestDistScalingGate(t *testing.T) {
	if os.Getenv("NODEVAR_DIST_SCALE") == "" {
		t.Skip("set NODEVAR_DIST_SCALE=1 to run the loadgen scaling gate")
	}
	dir := buildCmds(t)
	nodevard := filepath.Join(dir, "nodevard")

	var urls []string
	for i := 0; i < 4; i++ {
		w := startNodevard(t, nodevard, "-role=worker", "-worker-chunk-delay", "10ms")
		urls = append(urls, w.url)
	}

	runLoad := func(workers []string, firstSeed uint64) (completed int, s5xx int) {
		t.Helper()
		fe := startNodevard(t, nodevard, "-workers", strings.Join(workers, ","), "-probe-interval", "250ms")
		defer fe.kill(t)
		out, err := exec.Command(filepath.Join(dir, "loadgen"),
			"-target", fe.url, "-rate", "20", "-duration", "5s",
			"-first-seed", fmt.Sprint(firstSeed), "-max-5xx", "0").Output()
		if err != nil {
			t.Fatalf("loadgen against %d workers: %v\n%s\nfrontend stderr:\n%s",
				len(workers), err, out, fe.stderr.String())
		}
		var sum struct {
			Completed int `json:"completed"`
			Status5xx int `json:"status_5xx"`
		}
		if err := json.Unmarshal(out, &sum); err != nil {
			t.Fatalf("loadgen summary: %v\n%s", err, out)
		}
		return sum.Completed, sum.Status5xx
	}

	// Distinct seed ranges so the four-worker run cannot ride the shared
	// worker's completed-job cache.
	c1, x1 := runLoad(urls[:1], 100000)
	c4, x4 := runLoad(urls, 500000)
	t.Logf("completed in window: 1 worker %d, 4 workers %d", c1, c4)
	if x1 != 0 || x4 != 0 {
		t.Fatalf("5xx under load: 1-worker %d, 4-worker %d (want zero)", x1, x4)
	}
	if c1 == 0 {
		t.Fatal("one-worker run completed nothing; the gate cannot measure scaling")
	}
	if c4 < 2*c1 {
		t.Fatalf("4 workers completed %d studies vs %d on 1 worker; want at least 2x", c4, c1)
	}
}
